package isa

import (
	"fmt"
	"strings"
)

// Instr is one instruction of the modelled subset in structural form.
// Fields are interpreted according to Op:
//
//   - data processing: Rd, Rn (when UsesRn), Op2, SetFlags
//   - MUL: Rd := Rn * Rm; MLA: Rd := Rn * Rm + Ra
//   - shifts (UAL aliases): Rd, Op2 carries the shifted register
//   - memory: Rd is the transfer register, Mem the addressing mode
//   - branches: Target is the resolved instruction index, Label the
//     source-level name; BX reads Rm
//
// The zero value is "mov r0, r0" with condition EQ; construct instructions
// through the Builder, the Assembler, or the helper constructors.
type Instr struct {
	Op       Op
	Cond     Cond
	SetFlags bool

	Rd Reg // destination / transfer register
	Rn Reg // first source operand
	Rm Reg // multiply second operand; BX target
	Ra Reg // MLA accumulator

	Op2 Operand2   // data-processing flexible operand
	Mem MemOperand // memory addressing mode

	Target int    // branch destination as an instruction index
	Label  string // branch destination label (pre-resolution)
}

// Nop returns the canonical nop: per the paper, a condition-never
// data-processing instruction with zero-valued operands. It flows through
// the pipeline and drives zeros on the operand and write-back buses.
func Nop() Instr {
	return Instr{Op: NOP, Cond: NV, Op2: Imm(0)}
}

// MaxSrcRegs is the most registers any instruction of the subset reads:
// MLA reads three, as do stores with a register offset and
// register-shifted data-processing operands.
const MaxSrcRegs = 3

// SrcRegs returns the architectural registers the instruction reads, in
// operand-position order. Position matters to the leakage model: the
// paper's §4.1 shows that only same-position operands of successively
// issued instructions share an IS/EX bus.
func (in Instr) SrcRegs() []Reg {
	return in.AppendSrcRegs(nil)
}

// AppendSrcRegs appends the source registers to dst and returns the
// result — the allocation-free form of SrcRegs for hot paths, which
// pass a stack buffer of capacity MaxSrcRegs.
func (in Instr) AppendSrcRegs(dst []Reg) []Reg {
	rs := dst
	switch {
	case in.Op == NOP:
		return rs
	case in.Op.IsMul():
		rs = append(rs, in.Rn, in.Rm)
		if in.Op == MLA {
			rs = append(rs, in.Ra)
		}
	case in.Op.IsMem():
		if in.Op.IsStore() {
			rs = append(rs, in.Rd)
		}
		rs = append(rs, in.Mem.Base)
		if in.Mem.HasOffReg {
			rs = append(rs, in.Mem.OffReg)
		}
	case in.Op == BX:
		rs = append(rs, in.Rm)
	case in.Op.IsBranch():
		return rs
	default: // data processing
		if in.Op.UsesRn() {
			rs = append(rs, in.Rn)
		}
		if !in.Op2.IsImm {
			rs = append(rs, in.Op2.Reg)
			if in.Op2.ShiftByReg {
				rs = append(rs, in.Op2.ShiftReg)
			}
		}
	}
	return rs
}

// DstReg returns the destination register and whether one exists.
func (in Instr) DstReg() (Reg, bool) {
	switch {
	case in.Op == NOP, in.Op.IsCompare(), in.Op.IsStore(), in.Op == B, in.Op == BX:
		return 0, false
	case in.Op == BL:
		return LR, true
	}
	if in.Op.IsMem() { // loads
		if in.Mem.WriteBack || in.Mem.PostIndex {
			// The transfer register is primary; base write-back is reported
			// by BaseWriteBack.
			return in.Rd, true
		}
		return in.Rd, true
	}
	return in.Rd, true
}

// BaseWriteBack reports whether a memory instruction updates its base
// register, and which register that is.
func (in Instr) BaseWriteBack() (Reg, bool) {
	if in.Op.IsMem() && (in.Mem.WriteBack || in.Mem.PostIndex) {
		return in.Mem.Base, true
	}
	return 0, false
}

// UsesShifter reports whether the instruction occupies the barrel shifter:
// explicit shift mnemonics and any shifted flexible operand.
func (in Instr) UsesShifter() bool {
	if in.Op.IsShift() {
		return true
	}
	return in.Op.IsDataProc() && in.Op2.UsesShifter()
}

// Validate checks structural well-formedness and returns a descriptive
// error for the first violation found.
func (in Instr) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("isa: invalid op %d", uint8(in.Op))
	}
	if !in.Cond.Valid() {
		return fmt.Errorf("isa: %s: invalid condition %d", in.Op, uint8(in.Cond))
	}
	if in.Op == NOP && in.Cond != NV {
		return fmt.Errorf("isa: nop must carry the never condition")
	}
	regs := append([]Reg{in.Rd, in.Rn, in.Rm, in.Ra}, in.Op2.Reg, in.Op2.ShiftReg, in.Mem.Base, in.Mem.OffReg)
	for _, r := range regs {
		if !r.Valid() {
			return fmt.Errorf("isa: %s: invalid register %d", in.Op, uint8(r))
		}
	}
	if in.Op.IsDataProc() && !in.Op2.IsImm {
		if !in.Op2.Shift.Valid() {
			return fmt.Errorf("isa: %s: invalid shift kind", in.Op)
		}
		if !in.Op2.ShiftByReg && in.Op2.Shift != ShiftNone && in.Op2.Shift != ShiftRRX && in.Op2.ShiftAmt > 32 {
			return fmt.Errorf("isa: %s: shift amount %d out of range", in.Op, in.Op2.ShiftAmt)
		}
	}
	if in.Op.IsMem() {
		if in.Mem.PostIndex && in.Mem.WriteBack {
			return fmt.Errorf("isa: %s: post-index and write-back are exclusive", in.Op)
		}
	}
	if in.Op.IsBranch() && in.Op != BX && in.Target < 0 && in.Label == "" {
		return fmt.Errorf("isa: %s: branch without target", in.Op)
	}
	return nil
}

// String renders the instruction in UAL-style assembly.
func (in Instr) String() string {
	var sb strings.Builder
	mn := in.Op.String()
	if in.Op == NOP {
		return "nop"
	}
	sb.WriteString(mn)
	if in.SetFlags && !in.Op.IsCompare() {
		sb.WriteByte('s')
	}
	if in.Cond != AL {
		sb.WriteString(in.Cond.String())
	}
	sb.WriteByte(' ')
	switch {
	case in.Op.IsMul():
		fmt.Fprintf(&sb, "%s, %s, %s", in.Rd, in.Rn, in.Rm)
		if in.Op == MLA {
			fmt.Fprintf(&sb, ", %s", in.Ra)
		}
	case in.Op.IsMem():
		fmt.Fprintf(&sb, "%s, %s", in.Rd, in.Mem)
	case in.Op == BX:
		sb.WriteString(in.Rm.String())
	case in.Op.IsBranch():
		if in.Label != "" {
			sb.WriteString(in.Label)
		} else {
			fmt.Fprintf(&sb, "%d", in.Target)
		}
	case in.Op.IsShift():
		// UAL: lsl rd, rm, #n  (Op2 carries rm and the amount)
		if in.Op == RRX {
			fmt.Fprintf(&sb, "%s, %s", in.Rd, in.Op2.Reg)
		} else if in.Op2.ShiftByReg {
			fmt.Fprintf(&sb, "%s, %s, %s", in.Rd, in.Op2.Reg, in.Op2.ShiftReg)
		} else {
			fmt.Fprintf(&sb, "%s, %s, #%d", in.Rd, in.Op2.Reg, in.Op2.ShiftAmt)
		}
	case in.Op.IsCompare():
		fmt.Fprintf(&sb, "%s, %s", in.Rn, in.Op2)
	case in.Op.UsesRn():
		fmt.Fprintf(&sb, "%s, %s, %s", in.Rd, in.Rn, in.Op2)
	default: // mov/mvn
		fmt.Fprintf(&sb, "%s, %s", in.Rd, in.Op2)
	}
	return sb.String()
}

// Program is an assembled instruction sequence. Branch targets are
// resolved instruction indices.
type Program struct {
	Instrs []Instr
	// Symbols maps label names to instruction indices.
	Symbols map[string]int
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Instrs) }

// Validate checks every instruction and branch target.
func (p *Program) Validate() error {
	for i, in := range p.Instrs {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("instr %d (%s): %w", i, in, err)
		}
		if in.Op.IsBranch() && in.Op != BX {
			if in.Target < 0 || in.Target > len(p.Instrs) {
				return fmt.Errorf("instr %d (%s): branch target %d out of range", i, in, in.Target)
			}
		}
	}
	return nil
}

// String disassembles the whole program, one instruction per line with
// label annotations.
func (p *Program) String() string {
	labels := make(map[int][]string)
	for name, idx := range p.Symbols {
		labels[idx] = append(labels[idx], name)
	}
	var sb strings.Builder
	for i, in := range p.Instrs {
		for _, l := range labels[i] {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		fmt.Fprintf(&sb, "\t%s\n", in)
	}
	return sb.String()
}
