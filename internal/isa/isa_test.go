package isa

import (
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{R0, "r0"}, {R7, "r7"}, {R12, "r12"}, {SP, "sp"}, {LR, "lr"}, {PC, "pc"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestRegValid(t *testing.T) {
	for r := Reg(0); r < NumRegs; r++ {
		if !r.Valid() {
			t.Errorf("register %d should be valid", r)
		}
	}
	if Reg(16).Valid() {
		t.Error("register 16 should be invalid")
	}
}

func TestCondPassedAL(t *testing.T) {
	flagStates := []Flags{
		{}, {N: true}, {Z: true}, {C: true}, {V: true},
		{N: true, Z: true, C: true, V: true},
	}
	for _, f := range flagStates {
		if !AL.Passed(f) {
			t.Errorf("AL must pass under %v", f)
		}
		if NV.Passed(f) {
			t.Errorf("NV must never pass, flags %v", f)
		}
	}
}

func TestCondPassedTable(t *testing.T) {
	cases := []struct {
		c    Cond
		f    Flags
		want bool
	}{
		{EQ, Flags{Z: true}, true},
		{EQ, Flags{}, false},
		{NE, Flags{}, true},
		{NE, Flags{Z: true}, false},
		{CS, Flags{C: true}, true},
		{CC, Flags{C: true}, false},
		{MI, Flags{N: true}, true},
		{PL, Flags{N: true}, false},
		{VS, Flags{V: true}, true},
		{VC, Flags{V: true}, false},
		{HI, Flags{C: true}, true},
		{HI, Flags{C: true, Z: true}, false},
		{LS, Flags{C: true, Z: true}, true},
		{LS, Flags{C: true}, false},
		{GE, Flags{N: true, V: true}, true},
		{GE, Flags{N: true}, false},
		{LT, Flags{N: true}, true},
		{LT, Flags{N: true, V: true}, false},
		{GT, Flags{}, true},
		{GT, Flags{Z: true}, false},
		{LE, Flags{Z: true}, true},
		{LE, Flags{}, false},
	}
	for _, c := range cases {
		if got := c.c.Passed(c.f); got != c.want {
			t.Errorf("%v.Passed(%v) = %v, want %v", c.c, c.f, got, c.want)
		}
	}
}

// Complementary condition codes must disagree under every flag state.
func TestCondComplementPairs(t *testing.T) {
	pairs := [][2]Cond{{EQ, NE}, {CS, CC}, {MI, PL}, {VS, VC}, {HI, LS}, {GE, LT}, {GT, LE}}
	check := func(n, z, c, v bool) bool {
		f := Flags{N: n, Z: z, C: c, V: v}
		for _, p := range pairs {
			if p[0].Passed(f) == p[1].Passed(f) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestFlagsString(t *testing.T) {
	if got := (Flags{}).String(); got != "nzcv" {
		t.Errorf("zero flags = %q, want nzcv", got)
	}
	if got := (Flags{N: true, C: true}).String(); got != "NzCv" {
		t.Errorf("flags = %q, want NzCv", got)
	}
	if got := (Flags{N: true, Z: true, C: true, V: true}).String(); got != "NZCV" {
		t.Errorf("flags = %q, want NZCV", got)
	}
}

func TestOpPredicates(t *testing.T) {
	cases := []struct {
		op                                Op
		dataProc, mul, shift, load, store bool
		branch, hasDest, usesRn           bool
	}{
		{MOV, true, false, false, false, false, false, true, false},
		{ADD, true, false, false, false, false, false, true, true},
		{EOR, true, false, false, false, false, false, true, true},
		{CMP, true, false, false, false, false, false, false, true},
		{MUL, false, true, false, false, false, false, true, true},
		{LSL, true, false, true, false, false, false, true, false},
		{LDR, false, false, false, true, false, false, true, true},
		{LDRB, false, false, false, true, false, false, true, true},
		{STR, false, false, false, false, true, false, false, true},
		{B, false, false, false, false, false, true, false, false},
		{BL, false, false, false, false, false, true, true, false},
		{BX, false, false, false, false, false, true, false, true},
		{NOP, false, false, false, false, false, false, false, false},
	}
	for _, c := range cases {
		if got := c.op.IsDataProc(); got != c.dataProc {
			t.Errorf("%v.IsDataProc() = %v, want %v", c.op, got, c.dataProc)
		}
		if got := c.op.IsMul(); got != c.mul {
			t.Errorf("%v.IsMul() = %v, want %v", c.op, got, c.mul)
		}
		if got := c.op.IsShift(); got != c.shift {
			t.Errorf("%v.IsShift() = %v, want %v", c.op, got, c.shift)
		}
		if got := c.op.IsLoad(); got != c.load {
			t.Errorf("%v.IsLoad() = %v, want %v", c.op, got, c.load)
		}
		if got := c.op.IsStore(); got != c.store {
			t.Errorf("%v.IsStore() = %v, want %v", c.op, got, c.store)
		}
		if got := c.op.IsBranch(); got != c.branch {
			t.Errorf("%v.IsBranch() = %v, want %v", c.op, got, c.branch)
		}
		if got := c.op.HasDest(); got != c.hasDest {
			t.Errorf("%v.HasDest() = %v, want %v", c.op, got, c.hasDest)
		}
		if got := c.op.UsesRn(); got != c.usesRn {
			t.Errorf("%v.UsesRn() = %v, want %v", c.op, got, c.usesRn)
		}
	}
}

func TestOpAccessBytes(t *testing.T) {
	cases := map[Op]int{
		LDR: 4, STR: 4, LDRH: 2, STRH: 2, LDRB: 1, STRB: 1, ADD: 0, MOV: 0, B: 0,
	}
	for op, want := range cases {
		if got := op.AccessBytes(); got != want {
			t.Errorf("%v.AccessBytes() = %d, want %d", op, got, want)
		}
	}
}

func TestOpStringsUnique(t *testing.T) {
	seen := make(map[string]Op)
	for o := Op(0); o < numOps; o++ {
		name := o.String()
		if name == "" {
			t.Fatalf("op %d has empty name", o)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("ops %v and %v share mnemonic %q", prev, o, name)
		}
		seen[name] = o
	}
}
