// Package isa models the subset of the ARMv7-A instruction set
// architecture exercised by the DAC 2018 paper "Side-channel security of
// superscalar CPUs" (Barenghi & Pelosi).
//
// The package provides:
//
//   - register and condition-code definitions (Reg, Cond, Flags);
//   - a structural instruction representation (Instr) covering the
//     data-processing, multiply, shift, memory and branch instructions used
//     by the paper's micro-benchmarks and its AES-128 case study;
//   - pure evaluation semantics for the ALU and the barrel shifter
//     (EvalDataProc, EvalShift) shared by the pipeline simulator;
//   - the instruction-class taxonomy of the paper's Table 1 (Class,
//     Classify), which drives the dual-issue policy of the core model;
//   - a fluent program Builder, a two-pass text Assembler and a
//     disassembler, plus a compact 32-bit binary encoding with a
//     round-trip guarantee.
//
// The subset is semantically faithful where the paper depends on it
// (operand positions, shifter usage, sub-word memory accesses, nop
// implemented as a condition-never data-processing instruction with
// all-zero operands) and deliberately omits features the paper never
// touches (Thumb, coprocessors, exclusive monitors, PSR transfers).
package isa

import "fmt"

// Reg names one of the sixteen ARM core registers. R13–R15 retain their
// conventional roles (SP, LR, PC) but the simulator treats PC-relative
// addressing and PC writes as assembler-resolved branch targets instead of
// architectural register reads.
type Reg uint8

// Core register names.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15

	// SP, LR and PC are the ABI aliases of R13, R14 and R15.
	SP = R13
	LR = R14
	PC = R15

	// NumRegs is the size of the architectural register file.
	NumRegs = 16
)

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// String returns the canonical lower-case assembly name of the register.
func (r Reg) String() string {
	switch r {
	case SP:
		return "sp"
	case LR:
		return "lr"
	case PC:
		return "pc"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Cond is an ARM condition code. Every instruction carries one; AL
// (always) is the default and NV (never) is how the Cortex-A7 implements
// nop according to the paper's inference in §4.1: a condition-never
// data-processing instruction with zero-valued operands.
type Cond uint8

// Condition codes in architectural encoding order.
const (
	EQ Cond = iota // Z set
	NE             // Z clear
	CS             // C set
	CC             // C clear
	MI             // N set
	PL             // N clear
	VS             // V set
	VC             // V clear
	HI             // C set and Z clear
	LS             // C clear or Z set
	GE             // N == V
	LT             // N != V
	GT             // Z clear and N == V
	LE             // Z set or N != V
	AL             // always
	NV             // never (architecturally unpredictable; used for nop)

	numConds = 16
)

var condNames = [numConds]string{
	"eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
	"hi", "ls", "ge", "lt", "gt", "le", "", "nv",
}

// String returns the assembly suffix of the condition ("" for AL).
func (c Cond) String() string {
	if c < numConds {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Valid reports whether c is an architectural condition code.
func (c Cond) Valid() bool { return c < numConds }

// Flags holds the CPSR condition flags.
type Flags struct {
	N bool // negative
	Z bool // zero
	C bool // carry
	V bool // overflow
}

// Passed reports whether an instruction with condition c executes under
// the flag state f. NV never passes: the paper infers that the A7 issues
// such instructions down the pipeline (driving zero operands onto the
// shared buses) without performing their architectural effect.
func (c Cond) Passed(f Flags) bool {
	switch c {
	case EQ:
		return f.Z
	case NE:
		return !f.Z
	case CS:
		return f.C
	case CC:
		return !f.C
	case MI:
		return f.N
	case PL:
		return !f.N
	case VS:
		return f.V
	case VC:
		return !f.V
	case HI:
		return f.C && !f.Z
	case LS:
		return !f.C || f.Z
	case GE:
		return f.N == f.V
	case LT:
		return f.N != f.V
	case GT:
		return !f.Z && f.N == f.V
	case LE:
		return f.Z || f.N != f.V
	case AL:
		return true
	case NV:
		return false
	}
	return false
}

// String renders the flags as the conventional NZCV string with lower-case
// letters marking clear flags, e.g. "NzCv".
func (f Flags) String() string {
	b := []byte("nzcv")
	if f.N {
		b[0] = 'N'
	}
	if f.Z {
		b[1] = 'Z'
	}
	if f.C {
		b[2] = 'C'
	}
	if f.V {
		b[3] = 'V'
	}
	return string(b)
}
