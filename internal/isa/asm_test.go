package isa

import (
	"strings"
	"testing"
)

func TestAssembleBasic(t *testing.T) {
	p, err := Assemble(`
		@ a tiny program
		mov r0, r1
		mov r2, #42
		add r3, r4, r5
		add r3, r4, #0x10
		eor r6, r7, r8, lsl #2
		mul r9, r10, r11
		lsl r1, r2, #3
		ldr r0, [r1]
		ldrb r2, [r3, #1]
		str r4, [r5, r6]
		nop
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 11 {
		t.Fatalf("program length = %d, want 11", p.Len())
	}
	wantClasses := []Class{
		ClassMov, ClassMov, ClassALU, ClassALUImm, ClassShift, ClassMul,
		ClassShift, ClassLoadStore, ClassLoadStore, ClassLoadStore, ClassNop,
	}
	for i, c := range wantClasses {
		if got := Classify(p.Instrs[i]); got != c {
			t.Errorf("instr %d (%s) class = %v, want %v", i, p.Instrs[i], got, c)
		}
	}
}

func TestAssembleLabelsAndBranches(t *testing.T) {
	p, err := Assemble(`
	start:
		mov r0, #0
	loop:
		add r0, r0, #1
		cmp r0, #10
		bne loop
		b done
		nop
	done:
		bx lr
	`)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Symbols["start"]; got != 0 {
		t.Errorf("start = %d, want 0", got)
	}
	if got := p.Symbols["loop"]; got != 1 {
		t.Errorf("loop = %d, want 1", got)
	}
	bne := p.Instrs[3]
	if bne.Op != B || bne.Cond != NE || bne.Target != 1 {
		t.Errorf("bne = %+v, want branch NE to 1", bne)
	}
	b := p.Instrs[4]
	if b.Target != p.Symbols["done"] {
		t.Errorf("b target = %d, want %d", b.Target, p.Symbols["done"])
	}
}

func TestAssembleConditionsAndFlags(t *testing.T) {
	p, err := Assemble(`
		addeq r0, r1, r2
		adds r0, r1, r2
		addseq r0, r1, r2
		subne r3, r4, #1
		moveq r5, r6
		bls out
	out:
	`)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		i        int
		cond     Cond
		setFlags bool
	}{
		{0, EQ, false}, {1, AL, true}, {2, EQ, true}, {3, NE, false}, {4, EQ, false}, {5, LS, false},
	}
	for _, c := range checks {
		in := p.Instrs[c.i]
		if in.Cond != c.cond || in.SetFlags != c.setFlags {
			t.Errorf("instr %d (%s): cond=%v setFlags=%v, want %v/%v",
				c.i, in, in.Cond, in.SetFlags, c.cond, c.setFlags)
		}
	}
	// "bls" must be branch-on-LS, not bl with S.
	if p.Instrs[5].Op != B {
		t.Errorf("bls parsed as %v, want b", p.Instrs[5].Op)
	}
}

func TestAssembleMemoryModes(t *testing.T) {
	p, err := Assemble(`
		ldr r0, [r1]
		ldr r0, [r1, #4]
		ldr r0, [r1, #-4]
		ldr r0, [r1, r2]
		ldr r0, [r1, #4]!
		ldr r0, [r1], #4
		strh r3, [r4, #2]
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := p.Instrs[2].Mem
	if !m.OffImm || m.Imm != -4 {
		t.Errorf("negative offset = %+v", m)
	}
	m = p.Instrs[3].Mem
	if !m.HasOffReg || m.OffReg != R2 {
		t.Errorf("register offset = %+v", m)
	}
	m = p.Instrs[4].Mem
	if !m.WriteBack || m.PostIndex {
		t.Errorf("pre-index write-back = %+v", m)
	}
	m = p.Instrs[5].Mem
	if !m.PostIndex || m.WriteBack || m.Imm != 4 {
		t.Errorf("post-index = %+v", m)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"frob r0, r1",                        // unknown mnemonic
		"mov r0",                             // missing operand
		"add r0, r1",                         // missing operand
		"mov r16, r0",                        // bad register
		"b",                                  // missing target
		"b nowhere",                          // undefined label
		"ldr r0, [r1, #4]!, #2",              // malformed
		"nop r0",                             // nop takes no operands
		"lsl r0, r1, #40",                    // shift amount out of range
		"dup: dup: mov r0, r0 \n mov r1, r1", // duplicate label (same line twice)
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestAssembleCommentsAndBlankLines(t *testing.T) {
	p, err := Assemble(`
		// full line comment
		; another
		@ and another

		mov r0, r1 @ trailing
		mov r2, r3 ; trailing
		mov r4, r5 // trailing
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("length = %d, want 3", p.Len())
	}
}

// Round trip: disassembling and re-assembling must preserve the program.
func TestAssembleDisassembleRoundTrip(t *testing.T) {
	src := `
	entry:
		mov r0, #0
		mvn r1, r2
		add r3, r4, r5
		adc r3, r4, #1
		sub r6, r7, r8, lsr #4
		rsb r9, r10, #0
		and r1, r2, r3
		orr r1, r2, #0xF0
		eor r4, r5, r6
		bic r4, r5, #0xFF
		cmp r1, #3
		tst r2, r3
		mul r0, r1, r2
		mla r0, r1, r2, r3
		lsl r1, r2, #5
		lsr r1, r2, #5
		asr r1, r2, #5
		ror r1, r2, #5
		ldr r0, [r1, #4]
		ldrb r0, [r1, r2]
		ldrh r0, [r1]
		str r0, [r1, #-8]
		strb r0, [r1]
		strh r0, [r1, #2]
		beq entry
		bne entry
		b entry
		bl entry
		bx lr
		nop
	`
	p1, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Assemble(p1.String())
	if err != nil {
		t.Fatalf("re-assemble: %v\nsource:\n%s", err, p1)
	}
	if p1.Len() != p2.Len() {
		t.Fatalf("length mismatch: %d vs %d", p1.Len(), p2.Len())
	}
	for i := range p1.Instrs {
		a, b := p1.Instrs[i], p2.Instrs[i]
		a.Label, b.Label = "", "" // String() prints resolved targets via labels
		if a.String() != b.String() {
			t.Errorf("instr %d: %q vs %q", i, a.String(), b.String())
		}
	}
}

func TestBuilderMirrorsAssembler(t *testing.T) {
	b := NewBuilder()
	b.Label("top").
		MovImm(R0, 7).
		Add(R1, R2, R3).
		AddImm(R1, R2, 16).
		Eor(R4, R5, R6).
		Lsl(R7, R8, 3).
		Mul(R9, R10, R11).
		LdrOff(R0, R1, 4).
		Strb(R2, R3, 1).
		BCond(NE, "top").
		Nop(2)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	src := `
	top:
		mov r0, #7
		add r1, r2, r3
		add r1, r2, #16
		eor r4, r5, r6
		lsl r7, r8, #3
		mul r9, r10, r11
		ldr r0, [r1, #4]
		strb r2, [r3, #1]
		bne top
		nop
		nop
	`
	q, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != q.Len() {
		t.Fatalf("length mismatch: %d vs %d", p.Len(), q.Len())
	}
	for i := range p.Instrs {
		if p.Instrs[i].String() != q.Instrs[i].String() {
			t.Errorf("instr %d: builder %q vs asm %q", i, p.Instrs[i], q.Instrs[i])
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	b.B("missing")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("expected undefined-label error, got %v", err)
	}
	b2 := NewBuilder()
	b2.Label("x").Label("x")
	if _, err := b2.Build(); err == nil {
		t.Error("expected duplicate-label error")
	}
}

func TestProgramString(t *testing.T) {
	p := MustAssemble("loop:\n add r0, r0, #1\n b loop")
	s := p.String()
	if !strings.Contains(s, "loop:") || !strings.Contains(s, "add r0, r0, #1") {
		t.Errorf("program listing missing content:\n%s", s)
	}
}
