package isa

import "fmt"

// Builder constructs a Program incrementally. It resolves forward label
// references at Build time; misuse (duplicate or missing labels) is
// reported as an error from Build rather than panicking, so generators can
// surface problems to their callers.
type Builder struct {
	instrs []Instr
	labels map[string]int
	errs   []error
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]int)}
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.instrs) }

// Emit appends a raw instruction and returns its index.
func (b *Builder) Emit(in Instr) int {
	b.instrs = append(b.instrs, in)
	return len(b.instrs) - 1
}

// Label binds name to the next instruction index.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("isa: duplicate label %q", name))
		return b
	}
	b.labels[name] = len(b.instrs)
	return b
}

// Nop emits n canonical nops.
func (b *Builder) Nop(n int) *Builder {
	for i := 0; i < n; i++ {
		b.Emit(Nop())
	}
	return b
}

// Mov emits "mov rd, rm".
func (b *Builder) Mov(rd, rm Reg) *Builder {
	b.Emit(Instr{Op: MOV, Cond: AL, Rd: rd, Op2: RegOp(rm)})
	return b
}

// MovImm emits "mov rd, #imm".
func (b *Builder) MovImm(rd Reg, imm uint32) *Builder {
	b.Emit(Instr{Op: MOV, Cond: AL, Rd: rd, Op2: Imm(imm)})
	return b
}

// Mvn emits "mvn rd, rm".
func (b *Builder) Mvn(rd, rm Reg) *Builder {
	b.Emit(Instr{Op: MVN, Cond: AL, Rd: rd, Op2: RegOp(rm)})
	return b
}

// ALU emits a three-register data-processing instruction "op rd, rn, rm".
func (b *Builder) ALU(op Op, rd, rn, rm Reg) *Builder {
	b.Emit(Instr{Op: op, Cond: AL, Rd: rd, Rn: rn, Op2: RegOp(rm)})
	return b
}

// ALUImm emits "op rd, rn, #imm".
func (b *Builder) ALUImm(op Op, rd, rn Reg, imm uint32) *Builder {
	b.Emit(Instr{Op: op, Cond: AL, Rd: rd, Rn: rn, Op2: Imm(imm)})
	return b
}

// ALUShift emits "op rd, rn, rm, <kind> #amt" (shifted flexible operand).
func (b *Builder) ALUShift(op Op, rd, rn, rm Reg, kind ShiftKind, amt uint8) *Builder {
	b.Emit(Instr{Op: op, Cond: AL, Rd: rd, Rn: rn, Op2: ShiftedReg(rm, kind, amt)})
	return b
}

// Add, Sub, Eor, And, Orr are convenience wrappers for common ALU ops.
func (b *Builder) Add(rd, rn, rm Reg) *Builder { return b.ALU(ADD, rd, rn, rm) }

// Sub emits "sub rd, rn, rm".
func (b *Builder) Sub(rd, rn, rm Reg) *Builder { return b.ALU(SUB, rd, rn, rm) }

// Eor emits "eor rd, rn, rm".
func (b *Builder) Eor(rd, rn, rm Reg) *Builder { return b.ALU(EOR, rd, rn, rm) }

// And emits "and rd, rn, rm".
func (b *Builder) And(rd, rn, rm Reg) *Builder { return b.ALU(AND, rd, rn, rm) }

// Orr emits "orr rd, rn, rm".
func (b *Builder) Orr(rd, rn, rm Reg) *Builder { return b.ALU(ORR, rd, rn, rm) }

// AddImm emits "add rd, rn, #imm".
func (b *Builder) AddImm(rd, rn Reg, imm uint32) *Builder { return b.ALUImm(ADD, rd, rn, imm) }

// SubImm emits "sub rd, rn, #imm".
func (b *Builder) SubImm(rd, rn Reg, imm uint32) *Builder { return b.ALUImm(SUB, rd, rn, imm) }

// EorImm emits "eor rd, rn, #imm".
func (b *Builder) EorImm(rd, rn Reg, imm uint32) *Builder { return b.ALUImm(EOR, rd, rn, imm) }

// AndImm emits "and rd, rn, #imm".
func (b *Builder) AndImm(rd, rn Reg, imm uint32) *Builder { return b.ALUImm(AND, rd, rn, imm) }

// OrrImm emits "orr rd, rn, #imm".
func (b *Builder) OrrImm(rd, rn Reg, imm uint32) *Builder { return b.ALUImm(ORR, rd, rn, imm) }

// Cmp emits "cmp rn, rm"; CmpImm the immediate form. Both set flags.
func (b *Builder) Cmp(rn, rm Reg) *Builder {
	b.Emit(Instr{Op: CMP, Cond: AL, Rn: rn, Op2: RegOp(rm), SetFlags: true})
	return b
}

// CmpImm emits "cmp rn, #imm".
func (b *Builder) CmpImm(rn Reg, imm uint32) *Builder {
	b.Emit(Instr{Op: CMP, Cond: AL, Rn: rn, Op2: Imm(imm), SetFlags: true})
	return b
}

// Tst emits "tst rn, #imm".
func (b *Builder) Tst(rn Reg, imm uint32) *Builder {
	b.Emit(Instr{Op: TST, Cond: AL, Rn: rn, Op2: Imm(imm), SetFlags: true})
	return b
}

// Mul emits "mul rd, rn, rm".
func (b *Builder) Mul(rd, rn, rm Reg) *Builder {
	b.Emit(Instr{Op: MUL, Cond: AL, Rd: rd, Rn: rn, Rm: rm})
	return b
}

// Lsl emits "lsl rd, rm, #amt".
func (b *Builder) Lsl(rd, rm Reg, amt uint8) *Builder {
	b.Emit(Instr{Op: LSL, Cond: AL, Rd: rd, Op2: ShiftedReg(rm, ShiftLSL, amt)})
	return b
}

// Lsr emits "lsr rd, rm, #amt".
func (b *Builder) Lsr(rd, rm Reg, amt uint8) *Builder {
	b.Emit(Instr{Op: LSR, Cond: AL, Rd: rd, Op2: ShiftedReg(rm, ShiftLSR, amt)})
	return b
}

// Ror emits "ror rd, rm, #amt".
func (b *Builder) Ror(rd, rm Reg, amt uint8) *Builder {
	b.Emit(Instr{Op: ROR, Cond: AL, Rd: rd, Op2: ShiftedReg(rm, ShiftROR, amt)})
	return b
}

// Ldr emits "ldr rd, [base]".
func (b *Builder) Ldr(rd, base Reg) *Builder {
	b.Emit(Instr{Op: LDR, Cond: AL, Rd: rd, Mem: MemOperand{Base: base, OffImm: true}})
	return b
}

// LdrOff emits "ldr rd, [base, #off]".
func (b *Builder) LdrOff(rd, base Reg, off int32) *Builder {
	b.Emit(Instr{Op: LDR, Cond: AL, Rd: rd, Mem: MemImm(base, off)})
	return b
}

// LdrReg emits "ldr rd, [base, roff]".
func (b *Builder) LdrReg(rd, base, roff Reg) *Builder {
	b.Emit(Instr{Op: LDR, Cond: AL, Rd: rd, Mem: MemReg(base, roff)})
	return b
}

// Ldrb emits "ldrb rd, [base, #off]".
func (b *Builder) Ldrb(rd, base Reg, off int32) *Builder {
	b.Emit(Instr{Op: LDRB, Cond: AL, Rd: rd, Mem: MemImm(base, off)})
	return b
}

// LdrbReg emits "ldrb rd, [base, roff]".
func (b *Builder) LdrbReg(rd, base, roff Reg) *Builder {
	b.Emit(Instr{Op: LDRB, Cond: AL, Rd: rd, Mem: MemReg(base, roff)})
	return b
}

// Ldrh emits "ldrh rd, [base, #off]".
func (b *Builder) Ldrh(rd, base Reg, off int32) *Builder {
	b.Emit(Instr{Op: LDRH, Cond: AL, Rd: rd, Mem: MemImm(base, off)})
	return b
}

// Str emits "str rd, [base]".
func (b *Builder) Str(rd, base Reg) *Builder {
	b.Emit(Instr{Op: STR, Cond: AL, Rd: rd, Mem: MemOperand{Base: base, OffImm: true}})
	return b
}

// StrOff emits "str rd, [base, #off]".
func (b *Builder) StrOff(rd, base Reg, off int32) *Builder {
	b.Emit(Instr{Op: STR, Cond: AL, Rd: rd, Mem: MemImm(base, off)})
	return b
}

// Strb emits "strb rd, [base, #off]".
func (b *Builder) Strb(rd, base Reg, off int32) *Builder {
	b.Emit(Instr{Op: STRB, Cond: AL, Rd: rd, Mem: MemImm(base, off)})
	return b
}

// StrbReg emits "strb rd, [base, roff]".
func (b *Builder) StrbReg(rd, base, roff Reg) *Builder {
	b.Emit(Instr{Op: STRB, Cond: AL, Rd: rd, Mem: MemReg(base, roff)})
	return b
}

// Strh emits "strh rd, [base, #off]".
func (b *Builder) Strh(rd, base Reg, off int32) *Builder {
	b.Emit(Instr{Op: STRH, Cond: AL, Rd: rd, Mem: MemImm(base, off)})
	return b
}

// B emits an unconditional branch to label.
func (b *Builder) B(label string) *Builder {
	b.Emit(Instr{Op: B, Cond: AL, Label: label, Target: -1})
	return b
}

// BCond emits a conditional branch to label.
func (b *Builder) BCond(c Cond, label string) *Builder {
	b.Emit(Instr{Op: B, Cond: c, Label: label, Target: -1})
	return b
}

// Bl emits a branch-with-link to label.
func (b *Builder) Bl(label string) *Builder {
	b.Emit(Instr{Op: BL, Cond: AL, Rd: LR, Label: label, Target: -1})
	return b
}

// Bx emits "bx rm" (function return).
func (b *Builder) Bx(rm Reg) *Builder {
	b.Emit(Instr{Op: BX, Cond: AL, Rm: rm})
	return b
}

// Build resolves labels and returns the validated program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	instrs := make([]Instr, len(b.instrs))
	copy(instrs, b.instrs)
	for i := range instrs {
		in := &instrs[i]
		if in.Op.IsBranch() && in.Op != BX && in.Label != "" {
			tgt, ok := b.labels[in.Label]
			if !ok {
				return nil, fmt.Errorf("isa: undefined label %q at instruction %d", in.Label, i)
			}
			in.Target = tgt
		}
	}
	symbols := make(map[string]int, len(b.labels))
	for k, v := range b.labels {
		symbols[k] = v
	}
	p := &Program{Instrs: instrs, Symbols: symbols}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error, for use in tests and
// statically-known-correct generators.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
