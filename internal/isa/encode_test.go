package isa

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeFixed(t *testing.T) {
	prog := MustAssemble(`
	top:
		mov r0, #0xDEADBEEF
		add r1, r2, r3
		sub r4, r5, r6, lsl #7
		mul r7, r8, r9
		mla r7, r8, r9, r10
		ldr r0, [r1, #-12]
		strb r2, [r3, r4]
		ldr r5, [r6], #4
		str r7, [r8, #8]!
		beq top
		bx lr
		nop
	`)
	for i, in := range prog.Instrs {
		enc, err := Encode(in)
		if err != nil {
			t.Fatalf("encode %d (%s): %v", i, in, err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode %d (%s): %v", i, in, err)
		}
		in.Label = "" // labels are not serialized
		if dec.String() != in.String() {
			t.Errorf("instr %d round trip: %q -> %q", i, in, dec)
		}
	}
}

func TestEncodeRejectsUnresolvedBranch(t *testing.T) {
	if _, err := Encode(Instr{Op: B, Cond: AL, Label: "x", Target: -1}); err == nil {
		t.Error("encoding an unresolved branch must fail")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(EncodedInstr{0xFF, 0, 0}); err == nil {
		t.Error("decoding an invalid op must fail")
	}
}

// randomInstr draws a random valid instruction covering every operand
// shape; it is the generator for the round-trip property test.
func randomInstr(r *rand.Rand) Instr {
	reg := func() Reg { return Reg(r.Intn(NumRegs)) }
	shapes := []func() Instr{
		func() Instr { return Instr{Op: MOV, Cond: AL, Rd: reg(), Op2: Imm(r.Uint32())} },
		func() Instr { return Instr{Op: MVN, Cond: Cond(r.Intn(15)), Rd: reg(), Op2: RegOp(reg())} },
		func() Instr {
			op := []Op{ADD, ADC, SUB, SBC, RSB, AND, ORR, EOR, BIC}[r.Intn(9)]
			return Instr{Op: op, Cond: AL, SetFlags: r.Intn(2) == 0, Rd: reg(), Rn: reg(), Op2: RegOp(reg())}
		},
		func() Instr {
			k := []ShiftKind{ShiftLSL, ShiftLSR, ShiftASR, ShiftROR}[r.Intn(4)]
			return Instr{Op: ADD, Cond: AL, Rd: reg(), Rn: reg(), Op2: ShiftedReg(reg(), k, uint8(r.Intn(32)))}
		},
		func() Instr {
			return Instr{Op: EOR, Cond: AL, Rd: reg(), Rn: reg(), Op2: RegShiftedReg(reg(), ShiftROR, reg())}
		},
		func() Instr { return Instr{Op: CMP, Cond: AL, Rn: reg(), Op2: Imm(r.Uint32()), SetFlags: true} },
		func() Instr { return Instr{Op: MUL, Cond: AL, Rd: reg(), Rn: reg(), Rm: reg()} },
		func() Instr { return Instr{Op: MLA, Cond: AL, Rd: reg(), Rn: reg(), Rm: reg(), Ra: reg()} },
		func() Instr {
			op := []Op{LDR, LDRB, LDRH, STR, STRB, STRH}[r.Intn(6)]
			return Instr{Op: op, Cond: AL, Rd: reg(), Mem: MemImm(reg(), int32(r.Intn(4096)-2048))}
		},
		func() Instr {
			op := []Op{LDR, LDRB, STR, STRB}[r.Intn(4)]
			return Instr{Op: op, Cond: AL, Rd: reg(), Mem: MemReg(reg(), reg())}
		},
		func() Instr { return Instr{Op: B, Cond: Cond(r.Intn(15)), Target: r.Intn(1 << 20)} },
		func() Instr { return Instr{Op: BL, Cond: AL, Target: r.Intn(1 << 20)} },
		func() Instr { return Instr{Op: BX, Cond: AL, Rm: reg()} },
		func() Instr { return Nop() },
	}
	return shapes[r.Intn(len(shapes))]()
}

func TestEncodeDecodeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		in := randomInstr(r)
		enc, err := Encode(in)
		if err != nil {
			t.Logf("encode %s: %v", in, err)
			return false
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Logf("decode %s: %v", in, err)
			return false
		}
		return dec.String() == in.String() && Classify(dec) == Classify(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWriteReadProgram(t *testing.T) {
	p := MustAssemble(`
	loop:
		add r0, r0, #1
		cmp r0, #200
		bne loop
		bx lr
	`)
	var buf bytes.Buffer
	if err := WriteProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != p.Len() {
		t.Fatalf("length = %d, want %d", q.Len(), p.Len())
	}
	for i := range p.Instrs {
		a := p.Instrs[i]
		a.Label = ""
		if q.Instrs[i].String() != a.String() {
			t.Errorf("instr %d: %q vs %q", i, q.Instrs[i], a)
		}
	}
}

func TestReadProgramTruncated(t *testing.T) {
	p := MustAssemble("mov r0, r1\nmov r2, r3")
	var buf bytes.Buffer
	if err := WriteProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadProgram(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream must fail to decode")
	}
}
