package isa

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Assemble parses UAL-style assembly text into a Program. It is a
// two-pass assembler: labels may be referenced before their definition.
//
// Supported syntax per line:
//
//	label:                    @ label definition (may share a line)
//	mov r0, r1                @ comment introduced by '@', ';' or '//'
//	adds r2, r3, #0x10
//	addeq r2, r3, r4, lsl #2
//	ldrb r5, [r6, #1]
//	str r5, [r6, r7]
//	ldr r5, [r6], #4          @ post-indexed
//	str r5, [r6, #4]!         @ pre-indexed with write-back
//	bne loop
//	nop
func Assemble(src string) (*Program, error) {
	a := &assembler{b: NewBuilder()}
	for ln, raw := range strings.Split(src, "\n") {
		if err := a.line(raw); err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
	}
	return a.b.Build()
}

// MustAssemble is Assemble that panics on error, for tests and embedded
// fixed programs.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	b *Builder
}

func stripComment(s string) string {
	for _, marker := range []string{"@", ";", "//"} {
		if i := strings.Index(s, marker); i >= 0 {
			s = s[:i]
		}
	}
	return strings.TrimSpace(s)
}

func (a *assembler) line(raw string) error {
	s := stripComment(raw)
	for {
		i := strings.Index(s, ":")
		if i < 0 {
			break
		}
		label := strings.TrimSpace(s[:i])
		if label == "" || strings.ContainsAny(label, " \t,[]#") {
			return fmt.Errorf("malformed label %q", label)
		}
		a.b.Label(label)
		s = strings.TrimSpace(s[i+1:])
	}
	if s == "" {
		return nil
	}
	return a.instr(s)
}

// mnemonicTable lists base mnemonics longest-first so that greedy matching
// prefers "ldrb" over "ldr" and "mla" over nothing.
var mnemonicTable = func() []string {
	ms := make([]string, 0, int(numOps))
	for o := Op(0); o < numOps; o++ {
		ms = append(ms, o.String())
	}
	sort.Slice(ms, func(i, j int) bool { return len(ms[i]) > len(ms[j]) })
	return ms
}()

var opByName = func() map[string]Op {
	m := make(map[string]Op, int(numOps))
	for o := Op(0); o < numOps; o++ {
		m[o.String()] = o
	}
	return m
}()

var condByName = func() map[string]Cond {
	m := make(map[string]Cond, numConds)
	for c := Cond(0); c < numConds; c++ {
		if n := condNames[c]; n != "" {
			m[n] = c
		}
	}
	m["al"] = AL
	return m
}()

// splitMnemonic decomposes a full mnemonic like "addseq" or "ldrbne" into
// base op, condition and S flag. It tries longer base mnemonics first and
// rejects decompositions whose suffix is not a valid (cond, s) combination.
func splitMnemonic(mn string) (Op, Cond, bool, error) {
	mn = strings.ToLower(mn)
	for _, base := range mnemonicTable {
		if !strings.HasPrefix(mn, base) {
			continue
		}
		rest := mn[len(base):]
		op := opByName[base]
		cond := AL
		setFlags := false
		ok := true
		switch {
		case rest == "":
		case rest == "s":
			setFlags = true
		default:
			if c, found := condByName[rest]; found {
				cond = c
			} else if strings.HasSuffix(rest, "s") {
				if c, found := condByName[rest[:len(rest)-1]]; found {
					cond, setFlags = c, true
				} else {
					ok = false
				}
			} else if strings.HasPrefix(rest, "s") {
				if c, found := condByName[rest[1:]]; found {
					cond, setFlags = c, true
				} else {
					ok = false
				}
			} else {
				ok = false
			}
		}
		if !ok {
			continue
		}
		if setFlags && (op.IsMem() || op.IsBranch() || op == NOP) {
			continue // e.g. "bls" must parse as b+ls, not bl+s
		}
		return op, cond, setFlags, nil
	}
	return 0, AL, false, fmt.Errorf("unknown mnemonic %q", mn)
}

func parseReg(s string) (Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch s {
	case "sp":
		return SP, nil
	case "lr":
		return LR, nil
	case "pc":
		return PC, nil
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < NumRegs {
			return Reg(n), nil
		}
	}
	return 0, fmt.Errorf("invalid register %q", s)
}

func parseImm(s string) (uint32, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "#") {
		return 0, fmt.Errorf("immediate must start with '#': %q", s)
	}
	v, err := strconv.ParseInt(strings.TrimPrefix(s, "#"), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid immediate %q: %v", s, err)
	}
	return uint32(v), nil
}

// splitOperands splits on commas that are not inside brackets.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i, r := range s {
		switch r {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if rest := strings.TrimSpace(s[start:]); rest != "" {
		out = append(out, rest)
	}
	return out
}

func parseShiftKind(s string) (ShiftKind, bool) {
	switch strings.ToLower(s) {
	case "lsl":
		return ShiftLSL, true
	case "lsr":
		return ShiftLSR, true
	case "asr":
		return ShiftASR, true
	case "ror":
		return ShiftROR, true
	case "rrx":
		return ShiftRRX, true
	}
	return ShiftNone, false
}

// parseOp2 parses a flexible operand possibly spanning several
// comma-separated fields: "#imm" | "rm" | "rm", "lsl #n" | "rm", "lsl rs".
// It consumes fields from ops and returns the remainder.
func parseOp2(ops []string) (Operand2, []string, error) {
	if len(ops) == 0 {
		return Operand2{}, nil, fmt.Errorf("missing operand")
	}
	if strings.HasPrefix(ops[0], "#") {
		v, err := parseImm(ops[0])
		if err != nil {
			return Operand2{}, nil, err
		}
		return Imm(v), ops[1:], nil
	}
	r, err := parseReg(ops[0])
	if err != nil {
		return Operand2{}, nil, err
	}
	rest := ops[1:]
	if len(rest) > 0 {
		fields := strings.Fields(rest[0])
		if len(fields) >= 1 {
			if k, ok := parseShiftKind(fields[0]); ok {
				if k == ShiftRRX {
					return Operand2{Reg: r, Shift: ShiftRRX}, rest[1:], nil
				}
				if len(fields) != 2 {
					return Operand2{}, nil, fmt.Errorf("malformed shift %q", rest[0])
				}
				if strings.HasPrefix(fields[1], "#") {
					amt, err := parseImm(fields[1])
					if err != nil {
						return Operand2{}, nil, err
					}
					if amt > 32 {
						return Operand2{}, nil, fmt.Errorf("shift amount %d out of range", amt)
					}
					return ShiftedReg(r, k, uint8(amt)), rest[1:], nil
				}
				rs, err := parseReg(fields[1])
				if err != nil {
					return Operand2{}, nil, err
				}
				return RegShiftedReg(r, k, rs), rest[1:], nil
			}
		}
	}
	return RegOp(r), rest, nil
}

func parseMem(s string) (MemOperand, error) {
	s = strings.TrimSpace(s)
	post := false
	wb := false
	var postOff string
	if strings.HasSuffix(s, "!") {
		wb = true
		s = strings.TrimSpace(strings.TrimSuffix(s, "!"))
	}
	if !strings.HasPrefix(s, "[") {
		return MemOperand{}, fmt.Errorf("malformed memory operand %q", s)
	}
	end := strings.Index(s, "]")
	if end < 0 {
		return MemOperand{}, fmt.Errorf("unterminated memory operand %q", s)
	}
	inner := s[1:end]
	if rest := strings.TrimSpace(s[end+1:]); rest != "" {
		if wb {
			return MemOperand{}, fmt.Errorf("post-index cannot combine with '!': %q", s)
		}
		if !strings.HasPrefix(rest, ",") {
			return MemOperand{}, fmt.Errorf("malformed post-index %q", s)
		}
		post = true
		postOff = strings.TrimSpace(rest[1:])
	}
	parts := splitOperands(inner)
	if len(parts) == 0 || len(parts) > 2 {
		return MemOperand{}, fmt.Errorf("malformed memory operand %q", s)
	}
	base, err := parseReg(parts[0])
	if err != nil {
		return MemOperand{}, err
	}
	m := MemOperand{Base: base, OffImm: true, WriteBack: wb, PostIndex: post}
	off := ""
	if len(parts) == 2 {
		off = parts[1]
	}
	if post {
		if off != "" {
			return MemOperand{}, fmt.Errorf("post-index with pre-offset %q", s)
		}
		off = postOff
	}
	if off != "" {
		if strings.HasPrefix(off, "#") {
			v, err := parseImm(off)
			if err != nil {
				return MemOperand{}, err
			}
			m.Imm = int32(v)
		} else {
			r, err := parseReg(off)
			if err != nil {
				return MemOperand{}, err
			}
			m.OffReg = r
			m.HasOffReg = true
			m.OffImm = false
		}
	}
	if wb && !m.HasOffset() {
		return MemOperand{}, fmt.Errorf("write-back without offset %q", s)
	}
	return m, nil
}

func (a *assembler) instr(s string) error {
	mn := s
	rest := ""
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		mn, rest = s[:i], strings.TrimSpace(s[i+1:])
	}
	op, cond, setFlags, err := splitMnemonic(mn)
	if err != nil {
		return err
	}
	if op == NOP {
		if rest != "" {
			return fmt.Errorf("nop takes no operands")
		}
		a.b.Emit(Nop())
		return nil
	}
	ops := splitOperands(rest)
	in := Instr{Op: op, Cond: cond, SetFlags: setFlags}
	switch {
	case op.IsMul():
		want := 3
		if op == MLA {
			want = 4
		}
		if len(ops) != want {
			return fmt.Errorf("%s requires %d operands, got %d", op, want, len(ops))
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return err
		}
		if in.Rn, err = parseReg(ops[1]); err != nil {
			return err
		}
		if in.Rm, err = parseReg(ops[2]); err != nil {
			return err
		}
		if op == MLA {
			if in.Ra, err = parseReg(ops[3]); err != nil {
				return err
			}
		}
	case op.IsMem():
		if len(ops) < 2 {
			return fmt.Errorf("%s requires a register and a memory operand", op)
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return err
		}
		if in.Mem, err = parseMem(strings.Join(ops[1:], ", ")); err != nil {
			return err
		}
	case op == BX:
		if len(ops) != 1 {
			return fmt.Errorf("bx requires one register")
		}
		if in.Rm, err = parseReg(ops[0]); err != nil {
			return err
		}
	case op.IsBranch():
		if len(ops) != 1 {
			return fmt.Errorf("%s requires one target", op)
		}
		in.Label = ops[0]
		in.Target = -1
	case op.IsShift() && op != RRX:
		// lsl rd, rm, #n  |  lsl rd, rm, rs
		if len(ops) != 3 {
			return fmt.Errorf("%s requires 3 operands", op)
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return err
		}
		rm, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		kind := map[Op]ShiftKind{LSL: ShiftLSL, LSR: ShiftLSR, ASR: ShiftASR, ROR: ShiftROR}[op]
		if strings.HasPrefix(ops[2], "#") {
			amt, err := parseImm(ops[2])
			if err != nil {
				return err
			}
			if amt > 32 {
				return fmt.Errorf("shift amount %d out of range", amt)
			}
			in.Op2 = ShiftedReg(rm, kind, uint8(amt))
		} else {
			rs, err := parseReg(ops[2])
			if err != nil {
				return err
			}
			in.Op2 = RegShiftedReg(rm, kind, rs)
		}
	case op == RRX:
		if len(ops) != 2 {
			return fmt.Errorf("rrx requires 2 operands")
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return err
		}
		rm, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		in.Op2 = Operand2{Reg: rm, Shift: ShiftRRX}
	case op.IsCompare():
		if len(ops) < 2 {
			return fmt.Errorf("%s requires 2 operands", op)
		}
		if in.Rn, err = parseReg(ops[0]); err != nil {
			return err
		}
		op2, leftover, err := parseOp2(ops[1:])
		if err != nil {
			return err
		}
		if len(leftover) != 0 {
			return fmt.Errorf("trailing operands %v", leftover)
		}
		in.Op2 = op2
		in.SetFlags = true
	case op == MOV || op == MVN:
		if len(ops) < 2 {
			return fmt.Errorf("%s requires 2 operands", op)
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return err
		}
		op2, leftover, err := parseOp2(ops[1:])
		if err != nil {
			return err
		}
		if len(leftover) != 0 {
			return fmt.Errorf("trailing operands %v", leftover)
		}
		in.Op2 = op2
	default: // three-operand data processing
		if len(ops) < 3 {
			return fmt.Errorf("%s requires 3 operands", op)
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return err
		}
		if in.Rn, err = parseReg(ops[1]); err != nil {
			return err
		}
		op2, leftover, err := parseOp2(ops[2:])
		if err != nil {
			return err
		}
		if len(leftover) != 0 {
			return fmt.Errorf("trailing operands %v", leftover)
		}
		in.Op2 = op2
	}
	a.b.Emit(in)
	return nil
}
