package isa

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestEvalShiftLSL(t *testing.T) {
	cases := []struct {
		v, amt  uint32
		want    uint32
		carry   bool
		carryIn bool
	}{
		{0x1, 0, 0x1, true, true}, // amount 0 keeps carry-in
		{0x1, 1, 0x2, false, false},
		{0x80000000, 1, 0, true, false},
		{0xFFFFFFFF, 4, 0xFFFFFFF0, true, false},
		{0x1, 31, 0x80000000, false, false},
		{0x1, 32, 0, true, false},
		{0x2, 32, 0, false, false},
		{0x1, 33, 0, false, false},
	}
	for _, c := range cases {
		got := EvalShift(ShiftLSL, c.v, c.amt, c.carryIn)
		if got.Value != c.want || got.CarryOut != c.carry {
			t.Errorf("lsl %#x by %d = (%#x,%v), want (%#x,%v)",
				c.v, c.amt, got.Value, got.CarryOut, c.want, c.carry)
		}
	}
}

func TestEvalShiftLSR(t *testing.T) {
	got := EvalShift(ShiftLSR, 0x80000001, 1, false)
	if got.Value != 0x40000000 || got.CarryOut != true {
		t.Errorf("lsr 1 = (%#x,%v)", got.Value, got.CarryOut)
	}
	got = EvalShift(ShiftLSR, 0x80000000, 32, false)
	if got.Value != 0 || got.CarryOut != true {
		t.Errorf("lsr 32 = (%#x,%v)", got.Value, got.CarryOut)
	}
}

func TestEvalShiftASR(t *testing.T) {
	got := EvalShift(ShiftASR, 0x80000000, 4, false)
	if got.Value != 0xF8000000 {
		t.Errorf("asr = %#x, want 0xF8000000", got.Value)
	}
	got = EvalShift(ShiftASR, 0x80000000, 40, false)
	if got.Value != 0xFFFFFFFF || !got.CarryOut {
		t.Errorf("asr saturate = (%#x,%v)", got.Value, got.CarryOut)
	}
	got = EvalShift(ShiftASR, 0x40000000, 40, false)
	if got.Value != 0 || got.CarryOut {
		t.Errorf("asr positive saturate = (%#x,%v)", got.Value, got.CarryOut)
	}
}

func TestEvalShiftROR(t *testing.T) {
	got := EvalShift(ShiftROR, 0x00000001, 1, false)
	if got.Value != 0x80000000 || !got.CarryOut {
		t.Errorf("ror = (%#x,%v)", got.Value, got.CarryOut)
	}
	// Rotation by multiples of 32 returns the value with C = bit31.
	got = EvalShift(ShiftROR, 0x80000001, 32, false)
	if got.Value != 0x80000001 || !got.CarryOut {
		t.Errorf("ror 32 = (%#x,%v)", got.Value, got.CarryOut)
	}
}

func TestEvalShiftRRX(t *testing.T) {
	got := EvalShift(ShiftRRX, 0x00000003, 0, true)
	if got.Value != 0x80000001 || !got.CarryOut {
		t.Errorf("rrx = (%#x,%v)", got.Value, got.CarryOut)
	}
	got = EvalShift(ShiftRRX, 0x00000002, 0, false)
	if got.Value != 0x00000001 || got.CarryOut {
		t.Errorf("rrx = (%#x,%v)", got.Value, got.CarryOut)
	}
}

// Property: ROR by any amount preserves population count.
func TestRORPreservesPopcount(t *testing.T) {
	f := func(v uint32, amt uint8) bool {
		r := EvalShift(ShiftROR, v, uint32(amt%64), false)
		if amt%64 == 0 {
			return r.Value == v
		}
		return bits.OnesCount32(r.Value) == bits.OnesCount32(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: LSL then LSR by the same in-range amount masks the top bits.
func TestShiftInverseProperty(t *testing.T) {
	f := func(v uint32, amt uint8) bool {
		a := uint32(amt % 32)
		l := EvalShift(ShiftLSL, v, a, false)
		r := EvalShift(ShiftLSR, l.Value, a, false)
		mask := uint32(0xFFFFFFFF)
		if a > 0 {
			mask = (1 << (32 - a)) - 1
		}
		return r.Value == v&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalDataProcArithmetic(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint32
		want uint32
	}{
		{ADD, 2, 3, 5},
		{SUB, 5, 3, 2},
		{RSB, 3, 5, 2},
		{AND, 0xF0, 0xFF, 0xF0},
		{ORR, 0xF0, 0x0F, 0xFF},
		{EOR, 0xFF, 0x0F, 0xF0},
		{BIC, 0xFF, 0x0F, 0xF0},
		{MOV, 0, 42, 42},
		{MVN, 0, 0, 0xFFFFFFFF},
		{MUL, 6, 7, 42},
	}
	for _, c := range cases {
		got := EvalDataProc(c.op, c.a, c.b, false, Flags{})
		if got.Value != c.want {
			t.Errorf("%v(%d,%d) = %d, want %d", c.op, c.a, c.b, got.Value, c.want)
		}
	}
}

func TestEvalDataProcCarryChain(t *testing.T) {
	// ADC with carry set adds one more.
	got := EvalDataProc(ADC, 1, 2, false, Flags{C: true})
	if got.Value != 4 {
		t.Errorf("adc = %d, want 4", got.Value)
	}
	// SBC with carry clear subtracts one more.
	got = EvalDataProc(SBC, 10, 3, false, Flags{C: false})
	if got.Value != 6 {
		t.Errorf("sbc !C = %d, want 6", got.Value)
	}
	got = EvalDataProc(SBC, 10, 3, false, Flags{C: true})
	if got.Value != 7 {
		t.Errorf("sbc C = %d, want 7", got.Value)
	}
}

func TestEvalDataProcFlags(t *testing.T) {
	// Zero result sets Z.
	r := EvalDataProc(SUB, 5, 5, false, Flags{})
	if !r.Flags.Z || r.Flags.N {
		t.Errorf("sub equal: flags %v", r.Flags)
	}
	if !r.Flags.C { // no borrow => C set (ARM convention)
		t.Error("sub without borrow must set C")
	}
	// Borrow clears C.
	r = EvalDataProc(SUB, 3, 5, false, Flags{})
	if r.Flags.C {
		t.Error("sub with borrow must clear C")
	}
	if !r.Flags.N {
		t.Error("negative result must set N")
	}
	// Signed overflow sets V.
	r = EvalDataProc(ADD, 0x7FFFFFFF, 1, false, Flags{})
	if !r.Flags.V || !r.Flags.N {
		t.Errorf("add overflow: flags %v", r.Flags)
	}
	// Unsigned carry out.
	r = EvalDataProc(ADD, 0xFFFFFFFF, 1, false, Flags{})
	if !r.Flags.C || !r.Flags.Z {
		t.Errorf("add wrap: flags %v", r.Flags)
	}
	// Logical ops propagate the shifter carry.
	r = EvalDataProc(AND, 0xFF, 0xFF, true, Flags{})
	if !r.Flags.C {
		t.Error("logical op must take C from shifter carry")
	}
}

// Property: CMP sets the same flags as SUBS on identical inputs.
func TestCmpMatchesSub(t *testing.T) {
	f := func(a, b uint32) bool {
		return EvalDataProc(CMP, a, b, false, Flags{}).Flags ==
			EvalDataProc(SUB, a, b, false, Flags{}).Flags
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: EOR is self-inverse: (a^b)^b == a, and commutative.
func TestEorProperties(t *testing.T) {
	f := func(a, b uint32) bool {
		x := EvalDataProc(EOR, a, b, false, Flags{}).Value
		back := EvalDataProc(EOR, x, b, false, Flags{}).Value
		comm := EvalDataProc(EOR, b, a, false, Flags{}).Value
		return back == a && comm == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ADD/SUB round trip.
func TestAddSubInverse(t *testing.T) {
	f := func(a, b uint32) bool {
		s := EvalDataProc(ADD, a, b, false, Flags{}).Value
		return EvalDataProc(SUB, s, b, false, Flags{}).Value == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOperand2String(t *testing.T) {
	cases := []struct {
		o    Operand2
		want string
	}{
		{Imm(42), "#42"},
		{RegOp(R3), "r3"},
		{ShiftedReg(R4, ShiftLSL, 2), "r4, lsl #2"},
		{RegShiftedReg(R4, ShiftROR, R5), "r4, ror r5"},
		{Operand2{Reg: R6, Shift: ShiftRRX}, "r6, rrx"},
	}
	for _, c := range cases {
		if got := c.o.String(); got != c.want {
			t.Errorf("Operand2 = %q, want %q", got, c.want)
		}
	}
}

func TestMemOperandString(t *testing.T) {
	cases := []struct {
		m    MemOperand
		want string
	}{
		{MemImm(R1, 0), "[r1]"},
		{MemImm(R1, 8), "[r1, #8]"},
		{MemImm(R1, -4), "[r1, #-4]"},
		{MemReg(R1, R2), "[r1, r2]"},
		{MemOperand{Base: R1, OffImm: true, Imm: 4, WriteBack: true}, "[r1, #4]!"},
		{MemOperand{Base: R1, OffImm: true, Imm: 4, PostIndex: true}, "[r1], #4"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("MemOperand = %q, want %q", got, c.want)
		}
	}
}

func TestUsesShifter(t *testing.T) {
	if Imm(3).UsesShifter() {
		t.Error("immediate must not use the shifter")
	}
	if RegOp(R1).UsesShifter() {
		t.Error("plain register must not use the shifter")
	}
	if !ShiftedReg(R1, ShiftLSL, 0).UsesShifter() {
		t.Error("shifted register occupies the shifter even with amount 0")
	}
}
