package isa

import "testing"

func TestClassify(t *testing.T) {
	cases := []struct {
		in   Instr
		want Class
	}{
		{Instr{Op: MOV, Cond: AL, Rd: R0, Op2: RegOp(R1)}, ClassMov},
		{Instr{Op: MOV, Cond: AL, Rd: R0, Op2: Imm(7)}, ClassMov},
		{Instr{Op: MVN, Cond: AL, Rd: R0, Op2: RegOp(R1)}, ClassMov},
		{Instr{Op: ADD, Cond: AL, Rd: R0, Rn: R1, Op2: RegOp(R2)}, ClassALU},
		{Instr{Op: EOR, Cond: AL, Rd: R0, Rn: R1, Op2: RegOp(R2)}, ClassALU},
		{Instr{Op: ADD, Cond: AL, Rd: R0, Rn: R1, Op2: Imm(4)}, ClassALUImm},
		{Instr{Op: CMP, Cond: AL, Rn: R1, Op2: Imm(0), SetFlags: true}, ClassALUImm},
		{Instr{Op: MUL, Cond: AL, Rd: R0, Rn: R1, Rm: R2}, ClassMul},
		{Instr{Op: MLA, Cond: AL, Rd: R0, Rn: R1, Rm: R2, Ra: R3}, ClassMul},
		{Instr{Op: LSL, Cond: AL, Rd: R0, Op2: ShiftedReg(R1, ShiftLSL, 3)}, ClassShift},
		{Instr{Op: ADD, Cond: AL, Rd: R0, Rn: R1, Op2: ShiftedReg(R2, ShiftLSL, 3)}, ClassShift},
		{Instr{Op: B, Cond: AL, Target: 0}, ClassBranch},
		{Instr{Op: BL, Cond: AL, Target: 0}, ClassBranch},
		{Instr{Op: BX, Cond: AL, Rm: LR}, ClassBranch},
		{Instr{Op: LDR, Cond: AL, Rd: R0, Mem: MemImm(R1, 0)}, ClassLoadStore},
		{Instr{Op: LDRB, Cond: AL, Rd: R0, Mem: MemImm(R1, 0)}, ClassLoadStore},
		{Instr{Op: STR, Cond: AL, Rd: R0, Mem: MemImm(R1, 0)}, ClassLoadStore},
		{Nop(), ClassNop},
	}
	for _, c := range cases {
		if got := Classify(c.in); got != c.want {
			t.Errorf("Classify(%s) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTable1Classes(t *testing.T) {
	cs := Table1Classes()
	if len(cs) != NumClasses {
		t.Fatalf("Table1Classes returned %d classes, want %d", len(cs), NumClasses)
	}
	want := []Class{ClassMov, ClassALU, ClassALUImm, ClassMul, ClassShift, ClassBranch, ClassLoadStore}
	for i := range want {
		if cs[i] != want[i] {
			t.Errorf("class %d = %v, want %v", i, cs[i], want[i])
		}
	}
}

func TestClassNames(t *testing.T) {
	// The paper's Table 1 labels.
	want := map[Class]string{
		ClassMov:       "mov",
		ClassALU:       "ALU",
		ClassALUImm:    "ALU w/ imm",
		ClassMul:       "mul",
		ClassShift:     "shifts",
		ClassBranch:    "branch",
		ClassLoadStore: "ld/st",
	}
	for c, name := range want {
		if got := c.String(); got != name {
			t.Errorf("%d.String() = %q, want %q", c, got, name)
		}
	}
}

func TestSrcRegsOperandPositions(t *testing.T) {
	// Operand position order matters for the IS/EX bus leakage model.
	add := Instr{Op: ADD, Cond: AL, Rd: R0, Rn: R1, Op2: RegOp(R2)}
	got := add.SrcRegs()
	if len(got) != 2 || got[0] != R1 || got[1] != R2 {
		t.Errorf("add src regs = %v, want [r1 r2]", got)
	}
	str := Instr{Op: STR, Cond: AL, Rd: R3, Mem: MemReg(R4, R5)}
	got = str.SrcRegs()
	if len(got) != 3 || got[0] != R3 || got[1] != R4 || got[2] != R5 {
		t.Errorf("str src regs = %v, want [r3 r4 r5]", got)
	}
	ldr := Instr{Op: LDR, Cond: AL, Rd: R3, Mem: MemImm(R4, 8)}
	got = ldr.SrcRegs()
	if len(got) != 1 || got[0] != R4 {
		t.Errorf("ldr src regs = %v, want [r4]", got)
	}
	if n := Nop(); len(n.SrcRegs()) != 0 {
		t.Error("nop must have no source registers")
	}
}

func TestDstReg(t *testing.T) {
	if _, ok := Nop().DstReg(); ok {
		t.Error("nop must have no destination")
	}
	if _, ok := (Instr{Op: STR, Cond: AL, Rd: R1, Mem: MemImm(R2, 0)}).DstReg(); ok {
		t.Error("str must have no destination")
	}
	if d, ok := (Instr{Op: LDR, Cond: AL, Rd: R1, Mem: MemImm(R2, 0)}).DstReg(); !ok || d != R1 {
		t.Errorf("ldr dst = (%v,%v), want (r1,true)", d, ok)
	}
	if d, ok := (Instr{Op: BL, Cond: AL, Target: 0}).DstReg(); !ok || d != LR {
		t.Errorf("bl dst = (%v,%v), want (lr,true)", d, ok)
	}
	if _, ok := (Instr{Op: CMP, Cond: AL, Rn: R1, Op2: Imm(0), SetFlags: true}).DstReg(); ok {
		t.Error("cmp must have no destination")
	}
}

func TestBaseWriteBack(t *testing.T) {
	post := Instr{Op: LDR, Cond: AL, Rd: R1, Mem: MemOperand{Base: R2, OffImm: true, Imm: 4, PostIndex: true}}
	if r, ok := post.BaseWriteBack(); !ok || r != R2 {
		t.Errorf("post-index write-back = (%v,%v), want (r2,true)", r, ok)
	}
	plain := Instr{Op: LDR, Cond: AL, Rd: R1, Mem: MemImm(R2, 4)}
	if _, ok := plain.BaseWriteBack(); ok {
		t.Error("plain load must not write back its base")
	}
}

func TestInstrValidate(t *testing.T) {
	good := Instr{Op: ADD, Cond: AL, Rd: R0, Rn: R1, Op2: RegOp(R2)}
	if err := good.Validate(); err != nil {
		t.Errorf("valid instruction rejected: %v", err)
	}
	bad := Instr{Op: NOP, Cond: AL}
	if err := bad.Validate(); err == nil {
		t.Error("nop with AL condition must be rejected")
	}
	badMem := Instr{Op: LDR, Cond: AL, Rd: R0,
		Mem: MemOperand{Base: R1, OffImm: true, Imm: 4, PostIndex: true, WriteBack: true}}
	if err := badMem.Validate(); err == nil {
		t.Error("post-index plus write-back must be rejected")
	}
	badBranch := Instr{Op: B, Cond: AL, Target: -1}
	if err := badBranch.Validate(); err == nil {
		t.Error("unresolved branch must be rejected")
	}
}

func TestUsesShifterInstr(t *testing.T) {
	if !(Instr{Op: LSL, Cond: AL, Rd: R0, Op2: ShiftedReg(R1, ShiftLSL, 1)}).UsesShifter() {
		t.Error("lsl must use the shifter")
	}
	if !(Instr{Op: ADD, Cond: AL, Rd: R0, Rn: R1, Op2: ShiftedReg(R2, ShiftLSL, 1)}).UsesShifter() {
		t.Error("shifted-operand add must use the shifter")
	}
	if (Instr{Op: ADD, Cond: AL, Rd: R0, Rn: R1, Op2: RegOp(R2)}).UsesShifter() {
		t.Error("plain add must not use the shifter")
	}
	if Nop().UsesShifter() {
		t.Error("nop must not use the shifter")
	}
}
