package isa

import "fmt"

// Class is the instruction taxonomy of the paper's Table 1. The dual-issue
// policy of the Cortex-A7 model is expressed over these classes.
type Class uint8

// Instruction classes, in the row/column order of Table 1.
const (
	// ClassMov: register or immediate moves without a shifted operand.
	ClassMov Class = iota
	// ClassALU: arithmetic/logic with a plain register Op2 (two register
	// reads besides the destination; excludes mul).
	ClassALU
	// ClassALUImm: arithmetic/logic with an immediate Op2 (one register
	// read).
	ClassALUImm
	// ClassMul: multiplies (mul/mla), which occupy the shifter-equipped
	// ALU pipe's multiplier.
	ClassMul
	// ClassShift: explicit shifts and any instruction with a shifted
	// flexible operand; occupies the single barrel shifter.
	ClassShift
	// ClassBranch: control flow.
	ClassBranch
	// ClassLoadStore: memory accesses through the LSU.
	ClassLoadStore
	// ClassNop: the condition-never nop; per §3.2 it is never dual-issued.
	ClassNop
	// ClassOther: anything outside the Table 1 taxonomy (FPU/NEON in the
	// real core); never dual-issued by the model.
	ClassOther

	// NumClasses counts the Table 1 classes (excluding nop/other).
	NumClasses = 7
)

var classNames = map[Class]string{
	ClassMov:       "mov",
	ClassALU:       "ALU",
	ClassALUImm:    "ALU w/ imm",
	ClassMul:       "mul",
	ClassShift:     "shifts",
	ClassBranch:    "branch",
	ClassLoadStore: "ld/st",
	ClassNop:       "nop",
	ClassOther:     "other",
}

// String returns the Table 1 label of the class.
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Table1Classes lists the seven classes of the paper's Table 1 in its
// row/column order.
func Table1Classes() []Class {
	return []Class{ClassMov, ClassALU, ClassALUImm, ClassMul, ClassShift, ClassBranch, ClassLoadStore}
}

// Classify maps an instruction onto its Table 1 class.
//
// The boundaries follow §3.2 of the paper: "ALU indicates the set of
// arithmetic/logic operations save for the mul"; moves (register or
// immediate) are their own class; a shifted flexible operand drags any
// data-processing instruction into the shift class because it occupies
// the single barrel shifter.
func Classify(in Instr) Class {
	switch {
	case in.Op == NOP:
		return ClassNop
	case in.Op.IsBranch():
		return ClassBranch
	case in.Op.IsMem():
		return ClassLoadStore
	case in.Op.IsMul():
		return ClassMul
	case in.Op.IsShift():
		return ClassShift
	case in.Op.IsDataProc():
		if in.Op2.UsesShifter() {
			return ClassShift
		}
		if in.Op == MOV || in.Op == MVN {
			return ClassMov
		}
		if in.Op2.IsImm {
			return ClassALUImm
		}
		return ClassALU
	}
	return ClassOther
}
