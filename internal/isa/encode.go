package isa

import (
	"encoding/binary"
	"fmt"
	"io"
)

// The binary encoding packs one instruction into three little-endian
// 32-bit words. It is the simulator's serialization format (used by the
// trace tooling and for program round-trips), not the architectural ARM
// encoding: the modelled subset carries full 32-bit immediates and
// resolved branch indices, which do not fit ARM's modified-immediate and
// PC-relative fields.
//
// Word 0 layout (LSB first):
//
//	[0:8)   op
//	[8:12)  cond
//	[12]    set-flags
//	[13:17) rd
//	[17:21) rn
//	[21:25) rm
//	[25:29) ra
//	[29]    op2 is immediate
//	[30]    op2 shift-by-register
//	[31]    memory offset is a register
//
// Word 1 holds the data-processing immediate when bit 29 of word 0 is
// set; otherwise it packs the register-form flexible operand and the
// memory addressing mode:
//
//	[0:4)   op2 register
//	[4:7)   op2 shift kind
//	[7:13)  op2 shift amount
//	[13:17) op2 shift register
//	[17:21) memory base register
//	[21:25) memory offset register
//	[25]    post-index
//	[26]    write-back
//	[27]    memory offset is immediate
//
// Word 2 holds the signed memory immediate offset or the branch target
// instruction index. Labels are not serialized; decode yields resolved
// targets only.

// InstrWords is the number of 32-bit words per encoded instruction.
const InstrWords = 3

// EncodedInstr is the three-word binary form of an instruction.
type EncodedInstr [InstrWords]uint32

// Encode packs the instruction. Branch labels must already be resolved
// (Target >= 0) except for BX, which has no target.
func Encode(in Instr) (EncodedInstr, error) {
	if err := in.Validate(); err != nil {
		return EncodedInstr{}, err
	}
	if in.Op.IsBranch() && in.Op != BX && in.Target < 0 {
		return EncodedInstr{}, fmt.Errorf("isa: encode: unresolved branch target (label %q)", in.Label)
	}
	var w EncodedInstr
	w[0] = uint32(in.Op) |
		uint32(in.Cond)<<8 |
		b2u(in.SetFlags)<<12 |
		uint32(in.Rd)<<13 |
		uint32(in.Rn)<<17 |
		uint32(in.Rm)<<21 |
		uint32(in.Ra)<<25 |
		b2u(in.Op2.IsImm)<<29 |
		b2u(in.Op2.ShiftByReg)<<30 |
		b2u(in.Mem.HasOffReg)<<31
	if in.Op2.IsImm {
		w[1] = in.Op2.Imm
	} else {
		w[1] = uint32(in.Op2.Reg) |
			uint32(in.Op2.Shift)<<4 |
			uint32(in.Op2.ShiftAmt)<<7 |
			uint32(in.Op2.ShiftReg)<<13 |
			uint32(in.Mem.Base)<<17 |
			uint32(in.Mem.OffReg)<<21 |
			b2u(in.Mem.PostIndex)<<25 |
			b2u(in.Mem.WriteBack)<<26 |
			b2u(in.Mem.OffImm)<<27
	}
	switch {
	case in.Op.IsMem():
		w[2] = uint32(in.Mem.Imm)
	case in.Op.IsBranch() && in.Op != BX:
		w[2] = uint32(int32(in.Target))
	}
	return w, nil
}

// Decode unpacks a three-word encoding.
func Decode(w EncodedInstr) (Instr, error) {
	in := Instr{
		Op:       Op(w[0] & 0xFF),
		Cond:     Cond(w[0] >> 8 & 0xF),
		SetFlags: w[0]>>12&1 != 0,
		Rd:       Reg(w[0] >> 13 & 0xF),
		Rn:       Reg(w[0] >> 17 & 0xF),
		Rm:       Reg(w[0] >> 21 & 0xF),
		Ra:       Reg(w[0] >> 25 & 0xF),
	}
	if !in.Op.Valid() {
		return Instr{}, fmt.Errorf("isa: decode: invalid op %d", w[0]&0xFF)
	}
	if w[0]>>29&1 != 0 {
		in.Op2 = Imm(w[1])
	} else {
		in.Op2 = Operand2{
			Reg:        Reg(w[1] & 0xF),
			Shift:      ShiftKind(w[1] >> 4 & 0x7),
			ShiftAmt:   uint8(w[1] >> 7 & 0x3F),
			ShiftReg:   Reg(w[1] >> 13 & 0xF),
			ShiftByReg: w[0]>>30&1 != 0,
		}
		in.Mem = MemOperand{
			Base:      Reg(w[1] >> 17 & 0xF),
			OffReg:    Reg(w[1] >> 21 & 0xF),
			HasOffReg: w[0]>>31&1 != 0,
			PostIndex: w[1]>>25&1 != 0,
			WriteBack: w[1]>>26&1 != 0,
			OffImm:    w[1]>>27&1 != 0,
		}
	}
	switch {
	case in.Op.IsMem():
		in.Mem.Imm = int32(w[2])
	case in.Op.IsBranch() && in.Op != BX:
		in.Target = int(int32(w[2]))
	}
	if err := in.Validate(); err != nil {
		return Instr{}, fmt.Errorf("isa: decode: %w", err)
	}
	return in, nil
}

// WriteProgram serializes a program (instruction stream only; symbols are
// not preserved) as a length-prefixed little-endian word stream.
func WriteProgram(w io.Writer, p *Program) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(p.Instrs))); err != nil {
		return err
	}
	for i, in := range p.Instrs {
		enc, err := Encode(in)
		if err != nil {
			return fmt.Errorf("isa: instruction %d: %w", i, err)
		}
		if err := binary.Write(w, binary.LittleEndian, enc[:]); err != nil {
			return err
		}
	}
	return nil
}

// ReadProgram deserializes a program written by WriteProgram.
func ReadProgram(r io.Reader) (*Program, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	const maxInstrs = 1 << 24
	if n > maxInstrs {
		return nil, fmt.Errorf("isa: unreasonable program length %d", n)
	}
	p := &Program{Instrs: make([]Instr, 0, n), Symbols: map[string]int{}}
	for i := uint32(0); i < n; i++ {
		var enc EncodedInstr
		if err := binary.Read(r, binary.LittleEndian, enc[:]); err != nil {
			return nil, err
		}
		in, err := Decode(enc)
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i, err)
		}
		p.Instrs = append(p.Instrs, in)
	}
	return p, nil
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
