package isa

import (
	"fmt"
	"math/bits"
)

// ShiftKind selects a barrel-shifter function.
type ShiftKind uint8

// Barrel shifter functions. ShiftNone means the operand bypasses the
// shifter entirely (plain register or immediate), which matters for the
// dual-issue policy and for the shifter-buffer leakage model.
const (
	ShiftNone ShiftKind = iota
	ShiftLSL
	ShiftLSR
	ShiftASR
	ShiftROR
	ShiftRRX

	numShiftKinds
)

var shiftNames = [numShiftKinds]string{"", "lsl", "lsr", "asr", "ror", "rrx"}

// String returns the UAL spelling of the shift kind.
func (k ShiftKind) String() string {
	if k < numShiftKinds {
		return shiftNames[k]
	}
	return fmt.Sprintf("shift(%d)", uint8(k))
}

// Valid reports whether k is a defined shifter function.
func (k ShiftKind) Valid() bool { return k < numShiftKinds }

// Operand2 is the flexible second operand of ARM data-processing
// instructions: an immediate, a register, or a register shifted by an
// immediate amount or by the low byte of another register.
type Operand2 struct {
	// IsImm selects the immediate form. When set, only Imm is meaningful.
	IsImm bool
	// Imm is the immediate value. The assembler accepts any 32-bit value
	// (the simulator does not re-encode ARM's 8-bit-rotated immediates,
	// but the binary encoder rejects unencodable ones).
	Imm uint32
	// Reg is the register form's source register.
	Reg Reg
	// Shift is the shifter function applied to Reg.
	Shift ShiftKind
	// ShiftByReg selects shifting by register (amount = low byte of
	// ShiftReg) instead of by the immediate ShiftAmt.
	ShiftByReg bool
	// ShiftAmt is the immediate shift amount (0–31; RRX ignores it).
	ShiftAmt uint8
	// ShiftReg is the shift-amount register when ShiftByReg is set.
	ShiftReg Reg
}

// Imm returns an immediate Operand2.
func Imm(v uint32) Operand2 { return Operand2{IsImm: true, Imm: v} }

// RegOp returns a plain register Operand2.
func RegOp(r Reg) Operand2 { return Operand2{Reg: r} }

// ShiftedReg returns a register Operand2 shifted by an immediate amount.
func ShiftedReg(r Reg, k ShiftKind, amt uint8) Operand2 {
	return Operand2{Reg: r, Shift: k, ShiftAmt: amt}
}

// RegShiftedReg returns a register Operand2 shifted by a register amount.
func RegShiftedReg(r Reg, k ShiftKind, rs Reg) Operand2 {
	return Operand2{Reg: r, Shift: k, ShiftByReg: true, ShiftReg: rs}
}

// UsesShifter reports whether the operand occupies the barrel shifter.
// A plain register or immediate does not; any shifted register does, even
// with amount zero, because the instruction still routes through the
// shifter-equipped ALU pipe.
func (o Operand2) UsesShifter() bool { return !o.IsImm && o.Shift != ShiftNone }

// String renders the operand in UAL syntax.
func (o Operand2) String() string {
	if o.IsImm {
		return fmt.Sprintf("#%d", int32(o.Imm))
	}
	if o.Shift == ShiftNone {
		return o.Reg.String()
	}
	if o.Shift == ShiftRRX {
		return fmt.Sprintf("%s, rrx", o.Reg)
	}
	if o.ShiftByReg {
		return fmt.Sprintf("%s, %s %s", o.Reg, o.Shift, o.ShiftReg)
	}
	return fmt.Sprintf("%s, %s #%d", o.Reg, o.Shift, o.ShiftAmt)
}

// MemOperand is the addressing form of loads and stores:
// [Rn], [Rn, #imm] or [Rn, Rm] with optional write-back (pre-indexed) or
// post-indexed update. Register offsets are never shifted in our subset.
type MemOperand struct {
	// Base is the base address register.
	Base Reg
	// OffImm selects an immediate offset; otherwise OffReg is added.
	OffImm bool
	// Imm is the signed immediate offset.
	Imm int32
	// OffReg is the register offset.
	OffReg Reg
	// HasOffReg records that a register offset is present.
	HasOffReg bool
	// PostIndex applies the offset after the access and writes Base back.
	PostIndex bool
	// WriteBack writes the effective address back to Base (pre-indexed).
	WriteBack bool
}

// MemImm returns a [base, #imm] operand.
func MemImm(base Reg, imm int32) MemOperand {
	return MemOperand{Base: base, OffImm: true, Imm: imm}
}

// MemReg returns a [base, offset] register-offset operand.
func MemReg(base, off Reg) MemOperand {
	return MemOperand{Base: base, OffReg: off, HasOffReg: true}
}

// HasOffset reports whether the operand carries any offset.
func (m MemOperand) HasOffset() bool { return m.HasOffReg || (m.OffImm && m.Imm != 0) }

// String renders the addressing mode in UAL syntax.
func (m MemOperand) String() string {
	var inner string
	switch {
	case m.HasOffReg:
		inner = fmt.Sprintf("%s, %s", m.Base, m.OffReg)
	case m.OffImm && m.Imm != 0:
		inner = fmt.Sprintf("%s, #%d", m.Base, m.Imm)
	default:
		inner = m.Base.String()
	}
	switch {
	case m.PostIndex:
		if m.HasOffReg {
			return fmt.Sprintf("[%s], %s", m.Base, m.OffReg)
		}
		return fmt.Sprintf("[%s], #%d", m.Base, m.Imm)
	case m.WriteBack:
		return "[" + inner + "]!"
	default:
		return "[" + inner + "]"
	}
}

// ShiftResult is the output of the barrel shifter: the shifted value and
// the shifter carry-out (which becomes the C flag for logical operations
// with S set).
type ShiftResult struct {
	Value    uint32
	CarryOut bool
}

// EvalShift applies the barrel shifter function k to v with the given
// amount and incoming carry, following the ARM ARM semantics for
// data-processing operands (amount already resolved: for register-shift
// forms pass the low byte of the shift register).
func EvalShift(k ShiftKind, v uint32, amount uint32, carryIn bool) ShiftResult {
	switch k {
	case ShiftNone:
		return ShiftResult{Value: v, CarryOut: carryIn}
	case ShiftLSL:
		switch {
		case amount == 0:
			return ShiftResult{Value: v, CarryOut: carryIn}
		case amount < 32:
			return ShiftResult{Value: v << amount, CarryOut: v&(1<<(32-amount)) != 0}
		case amount == 32:
			return ShiftResult{Value: 0, CarryOut: v&1 != 0}
		default:
			return ShiftResult{Value: 0, CarryOut: false}
		}
	case ShiftLSR:
		switch {
		case amount == 0: // LSR #0 encodes LSR #32 in immediate form
			return ShiftResult{Value: v, CarryOut: carryIn}
		case amount < 32:
			return ShiftResult{Value: v >> amount, CarryOut: v&(1<<(amount-1)) != 0}
		case amount == 32:
			return ShiftResult{Value: 0, CarryOut: v&(1<<31) != 0}
		default:
			return ShiftResult{Value: 0, CarryOut: false}
		}
	case ShiftASR:
		switch {
		case amount == 0:
			return ShiftResult{Value: v, CarryOut: carryIn}
		case amount < 32:
			return ShiftResult{Value: uint32(int32(v) >> amount), CarryOut: v&(1<<(amount-1)) != 0}
		default:
			s := uint32(int32(v) >> 31)
			return ShiftResult{Value: s, CarryOut: s&1 != 0}
		}
	case ShiftROR:
		if amount == 0 {
			return ShiftResult{Value: v, CarryOut: carryIn}
		}
		amount %= 32
		if amount == 0 {
			return ShiftResult{Value: v, CarryOut: v&(1<<31) != 0}
		}
		r := bits.RotateLeft32(v, -int(amount))
		return ShiftResult{Value: r, CarryOut: r&(1<<31) != 0}
	case ShiftRRX:
		var hi uint32
		if carryIn {
			hi = 1 << 31
		}
		return ShiftResult{Value: v>>1 | hi, CarryOut: v&1 != 0}
	}
	return ShiftResult{Value: v, CarryOut: carryIn}
}

// ALUResult is the output of EvalDataProc: the computed value (undefined
// for compares, which have no destination) and the resulting flags.
type ALUResult struct {
	Value uint32
	Flags Flags
}

// EvalDataProc computes a data-processing operation on fully resolved
// operands. a is the Rn value, b the (already shifted) Op2 value,
// shiftCarry the shifter carry-out and f the incoming flags. The returned
// flags are the flags the instruction would set with S=1; callers that
// model S=0 simply keep the old flags.
func EvalDataProc(op Op, a, b uint32, shiftCarry bool, f Flags) ALUResult {
	logical := func(v uint32) ALUResult {
		return ALUResult{Value: v, Flags: Flags{
			N: v&(1<<31) != 0, Z: v == 0, C: shiftCarry, V: f.V,
		}}
	}
	addWith := func(x, y uint32, carry uint32) ALUResult {
		sum64 := uint64(x) + uint64(y) + uint64(carry)
		v := uint32(sum64)
		return ALUResult{Value: v, Flags: Flags{
			N: v&(1<<31) != 0,
			Z: v == 0,
			C: sum64 > 0xFFFFFFFF,
			V: (x^y)&(1<<31) == 0 && (x^v)&(1<<31) != 0,
		}}
	}
	c := uint32(0)
	if f.C {
		c = 1
	}
	switch op {
	case MOV, LSL, LSR, ASR, ROR, RRX:
		return logical(b)
	case MVN:
		return logical(^b)
	case AND, TST:
		return logical(a & b)
	case ORR:
		return logical(a | b)
	case EOR, TEQ:
		return logical(a ^ b)
	case BIC:
		return logical(a &^ b)
	case ADD, CMN:
		return addWith(a, b, 0)
	case ADC:
		return addWith(a, b, c)
	case SUB, CMP:
		return addWith(a, ^b, 1)
	case SBC:
		return addWith(a, ^b, c)
	case RSB:
		return addWith(b, ^a, 1)
	case MUL:
		v := a * b
		return ALUResult{Value: v, Flags: Flags{N: v&(1<<31) != 0, Z: v == 0, C: f.C, V: f.V}}
	}
	return ALUResult{Value: 0, Flags: f}
}
