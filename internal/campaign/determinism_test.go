package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// testSpec is a miniature campaign touching every workload kind and one
// ablated scan — scaled for test runtime, not statistical power.
func testSpec() *Spec {
	return &Spec{
		Name: "determinism-test",
		Seed: 7,
		Workloads: []Workload{
			{Kind: KindTable1, Reps: 20},
			{Kind: KindFigure2, Reps: 20},
			{Kind: KindTable2, Traces: []int{300}, Averages: 2, Rows: []int{1}},
			{Kind: KindTable2, Ablations: []string{"no-nop-wb-zero"}, Traces: []int{200}, Averages: 2, Rows: []int{1}},
			{Kind: KindFig3, Traces: []int{200}, Averages: 1, Rounds: 1},
			{Kind: KindFig4, Traces: []int{60}, Averages: 4, Rounds: 1},
			{Kind: KindFullKey, Traces: []int{100}, Averages: 1, Rounds: 1},
			{Kind: KindRankEvo, Counts: []int{60, 120}, Averages: 1, Rounds: 1},
			{Kind: KindMaskCPA, Gadgets: []string{"naive"}, Countermeasures: []string{"mask"}, Orders: []int{1, 2}, Traces: []int{150}, Averages: 2},
			{Kind: KindTVLA, Rows: []int{2}, Traces: []int{120}, Averages: 2},
		},
	}
}

// artifacts renders every canonical output of one run.
func artifacts(t *testing.T, res *Results) (jsonB, csvB, mdB []byte) {
	t.Helper()
	return res.EncodeJSON(), []byte(res.CSV()), []byte(Report(res))
}

// TestArtifactsIdenticalAcrossWorkersAndShards is the campaign's core
// determinism guarantee: same spec + same seed produce byte-identical
// JSON, CSV and Markdown whether the run is serial with scalar replay
// or spread over engine workers, scenario shards and lane-parallel
// replay batches.
func TestArtifactsIdenticalAcrossWorkersAndShards(t *testing.T) {
	spec := testSpec()
	serial, err := Run(spec, RunOptions{Workers: 1, Shards: 1, Lanes: -1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(spec, RunOptions{Workers: 3, Shards: 4, Lanes: 8})
	if err != nil {
		t.Fatal(err)
	}
	j1, c1, m1 := artifacts(t, serial)
	j2, c2, m2 := artifacts(t, parallel)
	if !bytes.Equal(j1, j2) {
		t.Error("results JSON differs between workers=1/shards=1 and workers=3/shards=4")
	}
	if !bytes.Equal(c1, c2) {
		t.Error("results CSV differs between worker/shard counts")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("Markdown report differs between worker/shard counts")
	}
}

// TestResumeProducesIdenticalArtifacts interrupts a campaign after two
// scenarios (by truncating its checkpoint) and verifies the resumed run
// executes only the remainder yet produces byte-identical artifacts.
func TestResumeProducesIdenticalArtifacts(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "checkpoint.jsonl")

	full, err := Run(spec, RunOptions{Workers: 2, Shards: 2, CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}

	// Simulate an interruption: keep the header and the first two
	// completed scenarios.
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != 1+len(full.Scenarios) {
		t.Fatalf("checkpoint has %d lines, want %d", len(lines), 1+len(full.Scenarios))
	}
	keep := 2
	if err := os.WriteFile(ckpt, []byte(strings.Join(lines[:1+keep], "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var executed, cached atomic.Int64
	resumed, err := Run(spec, RunOptions{
		Workers: 2, Shards: 2, CheckpointPath: ckpt, Resume: true,
		OnScenario: func(_ *ScenarioResult, fromCheckpoint bool) {
			if fromCheckpoint {
				cached.Add(1)
			} else {
				executed.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := int(cached.Load()), keep; got != want {
		t.Errorf("resume loaded %d scenarios from the checkpoint, want %d", got, want)
	}
	if got, want := int(executed.Load()), len(full.Scenarios)-keep; got != want {
		t.Errorf("resume executed %d scenarios, want %d", got, want)
	}

	j1, c1, m1 := artifacts(t, full)
	j2, c2, m2 := artifacts(t, resumed)
	if !bytes.Equal(j1, j2) {
		t.Error("resumed run's JSON differs from the uninterrupted run")
	}
	if !bytes.Equal(c1, c2) {
		t.Error("resumed run's CSV differs from the uninterrupted run")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("resumed run's Markdown differs from the uninterrupted run")
	}
}

// TestResumeWithTornCheckpointTail: a hard kill can leave a partial,
// newline-less final checkpoint line. Resume must discard the torn
// bytes — not append new records onto them — and still produce
// artifacts identical to an uninterrupted run, with the checkpoint file
// fully parseable afterwards.
func TestResumeWithTornCheckpointTail(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "checkpoint.jsonl")

	full, err := Run(spec, RunOptions{Workers: 2, Shards: 2, CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimRight(string(raw), "\n"), "\n")
	// Header + first scenario intact, then half of the second line.
	torn := lines[0] + lines[1] + lines[2][:len(lines[2])/2]
	if err := os.WriteFile(ckpt, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := Run(spec, RunOptions{Workers: 2, Shards: 2, CheckpointPath: ckpt, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	j1, _, _ := artifacts(t, full)
	j2, _, _ := artifacts(t, resumed)
	if !bytes.Equal(j1, j2) {
		t.Error("resume after a torn checkpoint tail differs from the uninterrupted run")
	}
	// Every line of the rewritten checkpoint must parse — the torn bytes
	// must not have merged with an appended record.
	after, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimRight(string(after), "\n"), "\n") {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("checkpoint line %d unparseable after torn-tail resume: %v", i, err)
		}
	}
}

// TestFingerprintIgnoresResultInvariantKnobs: Workers and Shards are
// documented as result-invariant, so retuning them must not orphan an
// existing checkpoint.
func TestFingerprintIgnoresResultInvariantKnobs(t *testing.T) {
	a := testSpec()
	b := testSpec()
	b.Workers, b.Shards = 8, 4
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint changed with Workers/Shards")
	}
	c := testSpec()
	c.Seed++
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("fingerprint ignored a seed change")
	}
}

// TestResumeRefusesForeignCheckpoint: a checkpoint written under one
// spec must not silently seed a different campaign.
func TestResumeRefusesForeignCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "checkpoint.jsonl")
	small := &Spec{Name: "a", Seed: 1, Workloads: []Workload{{Kind: KindTable1, Reps: 10}}}
	if _, err := Run(small, RunOptions{CheckpointPath: ckpt}); err != nil {
		t.Fatal(err)
	}
	other := &Spec{Name: "a", Seed: 2, Workloads: []Workload{{Kind: KindTable1, Reps: 10}}}
	_, err := Run(other, RunOptions{CheckpointPath: ckpt, Resume: true})
	if err == nil || !strings.Contains(err.Error(), "different spec") {
		t.Fatalf("want foreign-checkpoint refusal, got %v", err)
	}
}

// TestRunShardsErrorDoesNotDeadlock: when work fails, the pool must
// return the first error rather than hang — with one shard and several
// queued indexes, an early-returning worker used to strand the feeder
// on the unbuffered jobs channel forever.
func TestRunShardsErrorDoesNotDeadlock(t *testing.T) {
	done := make(chan error, 1)
	var ran atomic.Int64
	go func() {
		done <- runShards(1, []int{0, 1, 2, 3}, func(i int) error {
			ran.Add(1)
			return fmt.Errorf("boom at %d", i)
		})
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "boom at 0") {
			t.Fatalf("want first error, got %v", err)
		}
		if ran.Load() != 1 {
			t.Errorf("work ran %d times after the failure, want 1", ran.Load())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("runShards deadlocked on a failing run")
	}
}

// TestExecuteDeterministicPerScenario: the same scenario executed twice
// in isolation — at different worker counts and replay lane widths —
// yields identical serialized results (the property the
// checkpoint/resume machinery rests on).
func TestExecuteDeterministicPerScenario(t *testing.T) {
	spec := &Spec{
		Name: "x", Seed: 3,
		Workloads: []Workload{{Kind: KindFig3, Traces: []int{150}, Averages: 1, Rounds: 1}},
	}
	scs, err := spec.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	key, _ := spec.AttackKey()
	a, err := Execute(&scs[0], key, 1, -1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(&scs[0], key, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if CanonicalDigest(a) != CanonicalDigest(b) {
		t.Fatal("Execute is not deterministic across worker counts and lane widths")
	}
}
