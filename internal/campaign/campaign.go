// Package campaign turns the paper's evaluation — leakage verdicts and
// attack outcomes across micro-architectural feature combinations — into
// one declarative, sharded, resumable run whose structured output is the
// source the experiment documentation is generated from.
//
// A Spec enumerates scenarios as the cross product of three axes per
// workload: the pipeline ablation (named feature-toggle combinations of
// pipeline.Config and power.Model, up to the full 64-combination toggle
// space), the workload itself (Table 1 CPI matrix, Figure 2 inference,
// the seven Table 2 leakage benchmarks, the Figure 3/4 AES attacks,
// full-key recovery, rank evolution), and the acquisition parameters
// (trace count, averaging, noise sigma, trace-synthesis mode). The
// fig3-model attack kinds additionally sweep a cipher-target axis over
// the internal/target registry (AES, PRESENT, Speck64/128, ChaCha20),
// spelled absent for the AES default so pre-registry scenario IDs and
// seeds are unchanged. Run
// executes the enumeration over the existing engine worker pool,
// checkpointing each finished scenario; Results serialize to canonical
// JSON/CSV and render to Markdown.
//
// Determinism contract. Scenario enumeration order is a pure function of
// the Spec. Each scenario derives a private seed from (Spec.Seed,
// scenario ID) via engine.DeriveSeed, so its result is independent of
// which shard runs it, of every other scenario, and of resume points.
// Since every underlying experiment is itself bit-identical for any
// engine worker count, the campaign's JSON, CSV and Markdown artifacts
// are byte-identical for any (Workers, Shards) combination and for
// interrupted-and-resumed runs.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"slices"
	"sort"

	"repro/internal/aes"
	"repro/internal/attack"
	"repro/internal/leakscan"
	"repro/internal/masking"
	"repro/internal/target"
)

// Kind names one workload family a scenario can execute.
type Kind string

// The workload kinds. Each maps to one of the repository's experiment
// entry points.
const (
	// KindTable1 measures the dual-issue CPI matrix of the paper's
	// Table 1 (internal/cpi.MeasureMatrix).
	KindTable1 Kind = "table1"
	// KindFigure2 rederives the pipeline structure of the paper's
	// Figure 2 from the CPI matrix plus targeted probes.
	KindFigure2 Kind = "figure2"
	// KindTable2 runs the §4 leakage characterization: the seven Table 2
	// micro-benchmarks (or a Rows subset) with per-component verdicts.
	KindTable2 Kind = "table2"
	// KindFig3 runs the §5 bare-metal AES CPA (HW of SubBytes output).
	KindFig3 Kind = "fig3"
	// KindFig4 runs the §5 loaded-Linux AES CPA (HD between consecutive
	// SubBytes stores).
	KindFig4 Kind = "fig4"
	// KindFullKey recovers all sixteen first-round key bytes from one
	// shared trace stream.
	KindFullKey Kind = "fullkey"
	// KindRankEvo records the true key's rank at increasing trace counts
	// from a single checkpointed streaming run.
	KindRankEvo Kind = "rankevo"
	// KindMaskCPA runs a keyed CPA against one masked-gadget schedule
	// under a countermeasure combination, at first or second order
	// (internal/masking.EvaluateKeyedCPA) — the §4.2 secure-vs-broken
	// scheduling evaluation.
	KindMaskCPA Kind = "maskcpa"
	// KindTVLA runs the fixed-vs-random Welch t-test on Table 2
	// benchmark rows (internal/leakscan.RunTVLA).
	KindTVLA Kind = "tvla"
)

// Kinds lists every workload kind in canonical order.
func Kinds() []Kind {
	return []Kind{KindTable1, KindFigure2, KindTable2, KindFig3, KindFig4, KindFullKey, KindRankEvo, KindMaskCPA, KindTVLA}
}

func validKind(k Kind) bool {
	for _, v := range Kinds() {
		if v == k {
			return true
		}
	}
	return false
}

// SigmaDefault is the sentinel for "use the power model's default noise
// sigma" on the noise axis (spelled as an absent noise_sigmas entry in
// the JSON spec).
const SigmaDefault = -1

// Workload is one experiment family of a Spec, expanded into scenarios
// as the cross product Ablations x Traces x NoiseSigmas x Synth.
//
// Scenario identity follows the spec's spelling: a knob spelled out
// explicitly — even at its default value — appears in the scenario ID
// and therefore derives a different seed than the omitted form. Two
// such scenarios run the same experiment as independent replications
// on independent data, not as a duplicate (the ablation axis, by
// contrast, canonicalizes spellings so true duplicates are rejected).
type Workload struct {
	// Kind selects the experiment family.
	Kind Kind `json:"kind"`
	// Ablations names the micro-architectural variants to sweep: entries
	// from the toggle registry ("paper", "scalar", combinations joined
	// with "+", or "all64" for the full 2^6 toggle space). Empty means
	// ["paper"].
	Ablations []string `json:"ablations,omitempty"`
	// Traces lists acquisition counts to sweep; empty means the
	// workload's paper-scale default. Ignored by table1/figure2.
	Traces []int `json:"traces,omitempty"`
	// NoiseSigmas lists measurement-noise standard deviations to sweep;
	// empty means the power model's default.
	NoiseSigmas []float64 `json:"noise_sigmas,omitempty"`
	// Synth lists trace-synthesis modes to sweep ("auto", "replay",
	// "simulate"); empty means ["auto"]. Ignored by table1/figure2,
	// which measure cycle counts, not traces.
	Synth []string `json:"synth,omitempty"`
	// Targets lists cipher registry names to sweep for the fig3-model
	// attack kinds (fig3/fullkey/rankevo); empty means the AES paper
	// target. "aes" canonicalizes to the absent spelling, so listing it
	// explicitly reproduces the pre-registry scenario byte-for-byte.
	// Non-AES targets attack the cipher's registry default key — the
	// spec-level Key field is AES-only.
	Targets []string `json:"targets,omitempty"`
	// Averages is the per-acquisition averaging factor (0: workload
	// default — 16 for table2/fig4, 4 for fig3-family).
	Averages int `json:"averages,omitempty"`
	// KeyByte is the attacked key byte for fig3/fig4/rankevo. 0 selects
	// the workload default: byte 0 for the fig3 family, byte 1 for fig4
	// — fig4's model needs the preceding store, so byte 0 is not
	// attackable there and cannot be requested.
	KeyByte int `json:"key_byte,omitempty"`
	// Rounds truncates the simulated cipher for the attack kinds (0:
	// workload default).
	Rounds int `json:"rounds,omitempty"`
	// Reps is the pair-repetition count for table1/figure2 (0:
	// cpi.DefaultReps).
	Reps int `json:"reps,omitempty"`
	// Rows restricts table2 to a subset of the seven benchmark rows
	// (1-based); empty means all seven.
	Rows []int `json:"rows,omitempty"`
	// Counts are the rankevo checkpoint trace counts (required for
	// rankevo, ignored elsewhere).
	Counts []int `json:"counts,omitempty"`
	// Confidence is the table2 detection criterion (0: 0.995).
	Confidence float64 `json:"confidence,omitempty"`
	// Gadgets lists maskcpa gadget schedules to sweep
	// (masking.Schedules()); empty means ["sbox"]. Maskcpa only.
	Gadgets []string `json:"gadgets,omitempty"`
	// Countermeasures lists maskcpa countermeasure combinations to sweep
	// ("none" or "+"-joined subsets of mask|shuffle|jitter); empty means
	// ["mask"]. Maskcpa only.
	Countermeasures []string `json:"countermeasures,omitempty"`
	// Orders lists maskcpa CPA combining orders to sweep (1 and/or 2);
	// empty means [1]. Maskcpa only.
	Orders []int `json:"orders,omitempty"`
}

// maskAxes resolves the maskcpa sweep axes with their defaults: the
// masked S-box gadget, plain masking, first-order CPA.
func (w *Workload) maskAxes() (gadgets, ctrs []string, orders []int) {
	gadgets = w.Gadgets
	if len(gadgets) == 0 {
		gadgets = []string{masking.ScheduleSbox}
	}
	ctrs = w.Countermeasures
	if len(ctrs) == 0 {
		ctrs = []string{"mask"}
	}
	orders = w.Orders
	if len(orders) == 0 {
		orders = []int{1}
	}
	return gadgets, ctrs, orders
}

// Spec is a declarative campaign: a seeded, ordered set of workload
// sweeps. The zero values of the tuning knobs select the documented
// defaults, so a minimal spec is just a name, a seed and workload kinds.
type Spec struct {
	// Name identifies the campaign in reports and checkpoints.
	Name string `json:"name"`
	// Seed is the campaign master seed; every scenario derives its
	// private seed from (Seed, scenario ID), never from enumeration
	// position, so edits to the spec do not shift sibling scenarios.
	Seed int64 `json:"seed"`
	// Workers sizes each scenario's engine worker pool (0: one per
	// core). Results are bit-identical for any value.
	Workers int `json:"workers,omitempty"`
	// Shards is the number of scenarios executed concurrently (0: 1).
	// Results are bit-identical for any value.
	Shards int `json:"shards,omitempty"`
	// Key is the AES-128 key of the attack workloads as 32 hex digits
	// (empty: the FIPS SP800-38A example key).
	Key string `json:"key,omitempty"`
	// Workloads are the sweeps to enumerate, in order.
	Workloads []Workload `json:"workloads"`
}

// DefaultKey is the AES-128 key attacked when a Spec names none: the
// FIPS SP800-38A example key (attack.DefaultKey), matching cmd/aescpa.
var DefaultKey = attack.DefaultKey

// AttackKey returns the spec's AES key.
func (s *Spec) AttackKey() ([aes.KeySize]byte, error) {
	k, err := attack.ParseKey(s.Key)
	if err != nil {
		return DefaultKey, fmt.Errorf("campaign: key must be %d hex digits", 2*aes.KeySize)
	}
	return k, nil
}

// Validate reports the first specification error, including every
// ablation or synthesis-mode name that fails to parse.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("campaign: spec needs a name")
	}
	if s.Workers < 0 {
		return fmt.Errorf("campaign: workers must be >= 0, got %d", s.Workers)
	}
	if s.Shards < 0 {
		return fmt.Errorf("campaign: shards must be >= 0, got %d", s.Shards)
	}
	if _, err := s.AttackKey(); err != nil {
		return err
	}
	if len(s.Workloads) == 0 {
		return fmt.Errorf("campaign: spec needs at least one workload")
	}
	for wi := range s.Workloads {
		w := &s.Workloads[wi]
		if !validKind(w.Kind) {
			return fmt.Errorf("campaign: workload %d: unknown kind %q", wi, w.Kind)
		}
		if _, err := expandAblations(w.Ablations); err != nil {
			return fmt.Errorf("campaign: workload %d (%s): %w", wi, w.Kind, err)
		}
		for _, n := range w.Traces {
			if n < 8 {
				return fmt.Errorf("campaign: workload %d (%s): traces must be >= 8, got %d", wi, w.Kind, n)
			}
		}
		for _, sg := range w.NoiseSigmas {
			if sg < 0 {
				return fmt.Errorf("campaign: workload %d (%s): noise sigma must be >= 0, got %g", wi, w.Kind, sg)
			}
		}
		for _, m := range w.Synth {
			if _, err := parseSynth(m); err != nil {
				return fmt.Errorf("campaign: workload %d (%s): %w", wi, w.Kind, err)
			}
		}
		if w.Averages < 0 {
			return fmt.Errorf("campaign: workload %d (%s): averages must be >= 0", wi, w.Kind)
		}
		if w.KeyByte < 0 || w.KeyByte >= aes.BlockSize {
			return fmt.Errorf("campaign: workload %d (%s): key byte out of range", wi, w.Kind)
		}
		if w.Rounds < 0 || w.Rounds > aes.Rounds {
			return fmt.Errorf("campaign: workload %d (%s): rounds must be in 0..%d", wi, w.Kind, aes.Rounds)
		}
		if w.Reps < 0 {
			return fmt.Errorf("campaign: workload %d (%s): reps must be >= 0", wi, w.Kind)
		}
		seenRow := map[int]bool{}
		for _, r := range w.Rows {
			if r < 1 || r > 7 {
				return fmt.Errorf("campaign: workload %d (%s): row %d out of [1,7]", wi, w.Kind, r)
			}
			if seenRow[r] {
				return fmt.Errorf("campaign: workload %d (%s): row %d listed twice", wi, w.Kind, r)
			}
			seenRow[r] = true
		}
		if w.Kind == KindRankEvo {
			if len(w.Counts) == 0 {
				return fmt.Errorf("campaign: workload %d: rankevo needs counts", wi)
			}
			if len(w.Traces) > 0 {
				return fmt.Errorf("campaign: workload %d: rankevo derives its trace count from counts; remove traces", wi)
			}
			sorted := append([]int(nil), w.Counts...)
			sort.Ints(sorted)
			if sorted[0] < 8 {
				return fmt.Errorf("campaign: workload %d: rankevo counts must be >= 8", wi)
			}
			for i := 1; i < len(sorted); i++ {
				if sorted[i] == sorted[i-1] {
					return fmt.Errorf("campaign: workload %d: rankevo count %d listed twice", wi, sorted[i])
				}
			}
		}
		if w.Confidence < 0 || w.Confidence >= 1 {
			return fmt.Errorf("campaign: workload %d (%s): confidence must be in [0,1)", wi, w.Kind)
		}
		if w.Kind == KindTVLA && w.Confidence != 0 {
			return fmt.Errorf("campaign: workload %d (tvla): the t-test uses the fixed |t| > %g threshold; remove confidence", wi, leakscan.TVLAThreshold)
		}
		switch w.Kind {
		case KindFig3, KindFullKey, KindRankEvo:
			seenTgt := map[string]bool{}
			for _, tn := range w.Targets {
				tgt, err := target.Get(target.Resolve(tn))
				if err != nil {
					return fmt.Errorf("campaign: workload %d (%s): %w", wi, w.Kind, err)
				}
				info := tgt.Info()
				if seenTgt[info.Name] {
					return fmt.Errorf("campaign: workload %d (%s): target %q listed twice", wi, w.Kind, info.Name)
				}
				seenTgt[info.Name] = true
				if w.Rounds > info.MaxRounds {
					return fmt.Errorf("campaign: workload %d (%s): rounds %d exceeds %s's %d", wi, w.Kind, w.Rounds, info.Name, info.MaxRounds)
				}
				if w.KeyByte >= info.AttackBytes {
					return fmt.Errorf("campaign: workload %d (%s): key byte %d outside %s's [0,%d)", wi, w.Kind, w.KeyByte, info.Name, info.AttackBytes)
				}
			}
		default:
			if len(w.Targets) > 0 {
				return fmt.Errorf("campaign: workload %d (%s): targets apply to fig3/fullkey/rankevo only", wi, w.Kind)
			}
		}
		if w.Kind == KindMaskCPA {
			gadgets, ctrs, orders := w.maskAxes()
			for _, g := range gadgets {
				if !slices.Contains(masking.Schedules(), g) {
					return fmt.Errorf("campaign: workload %d (maskcpa): unknown gadget %q (want one of %v)", wi, g, masking.Schedules())
				}
			}
			seenCtr := map[string]bool{}
			for _, c := range ctrs {
				ctr, err := masking.ParseCountermeasure(c)
				if err != nil {
					return fmt.Errorf("campaign: workload %d (maskcpa): %w", wi, err)
				}
				if seenCtr[ctr.String()] {
					return fmt.Errorf("campaign: workload %d (maskcpa): countermeasure %q listed twice", wi, ctr)
				}
				seenCtr[ctr.String()] = true
				for _, g := range gadgets {
					if err := masking.ValidateCombination(g, ctr); err != nil {
						return fmt.Errorf("campaign: workload %d (maskcpa): %w", wi, err)
					}
				}
			}
			seenOrder := map[int]bool{}
			for _, o := range orders {
				if o != 1 && o != 2 {
					return fmt.Errorf("campaign: workload %d (maskcpa): order must be 1 or 2, got %d", wi, o)
				}
				if seenOrder[o] {
					return fmt.Errorf("campaign: workload %d (maskcpa): order %d listed twice", wi, o)
				}
				seenOrder[o] = true
			}
		} else if len(w.Gadgets) > 0 || len(w.Countermeasures) > 0 || len(w.Orders) > 0 {
			return fmt.Errorf("campaign: workload %d (%s): gadgets/countermeasures/orders apply to maskcpa only", wi, w.Kind)
		}
	}
	if _, err := s.Enumerate(); err != nil {
		return err
	}
	return nil
}

// LoadSpec reads and validates a JSON campaign spec from path. Unknown
// fields are rejected so a typo cannot silently drop an axis.
func LoadSpec(path string) (*Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseSpec(raw)
}

// ParseSpec parses and validates a JSON campaign spec.
func ParseSpec(raw []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("campaign: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Fingerprint returns a stable hex digest of the spec's
// result-affecting fields, recorded in checkpoints and results so
// artifacts can be matched to the exact spec that produced them.
// Workers and Shards are excluded: they are documented as
// result-invariant, so retuning them must not invalidate a checkpoint.
func (s *Spec) Fingerprint() string {
	c := *s
	c.Workers, c.Shards = 0, 0
	return CanonicalDigest(&c)
}
