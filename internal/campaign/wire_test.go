package campaign

import (
	"encoding/json"
	"testing"
)

// wireTestSpec enumerates at least one scenario of every axis shape the
// wire form has to carry: default axes, explicit acquisition points,
// rows/counts lists, and the maskcpa countermeasure point.
func wireTestSpec(t *testing.T) *Spec {
	t.Helper()
	spec, err := ParseSpec([]byte(`{
	  "name": "wire",
	  "seed": 7,
	  "workloads": [
	    {"kind": "table1", "reps": 10},
	    {"kind": "table2", "traces": [120], "averages": 2, "rows": [5, 1], "confidence": 0.9},
	    {"kind": "fig3", "traces": [64], "rounds": 1, "noise_sigmas": [2], "synth": ["simulate"]},
	    {"kind": "rankevo", "counts": [16, 32], "rounds": 1},
	    {"kind": "maskcpa", "gadgets": ["sbox"], "countermeasures": ["mask"], "orders": [2], "traces": [64]},
	    {"kind": "tvla", "rows": [2], "traces": [64]}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestScenarioWireRoundTrip proves the wire form is lossless and
// self-validating: every enumerated scenario survives
// WireRequest -> JSON -> Resolve with identical axes and an identical
// derived seed, and the fingerprint is stable across the round trip.
func TestScenarioWireRoundTrip(t *testing.T) {
	spec := wireTestSpec(t)
	scenarios, err := spec.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range scenarios {
		sc := &scenarios[i]
		req := sc.WireRequest(spec.Name, spec.Seed, spec.Key)
		raw, err := json.Marshal(&req)
		if err != nil {
			t.Fatal(err)
		}
		var back ScenarioRequest
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		if back.Fingerprint() != req.Fingerprint() {
			t.Fatalf("%s: fingerprint changed across JSON round trip", sc.ID)
		}
		got, key, err := back.Resolve()
		if err != nil {
			t.Fatalf("%s: resolve: %v", sc.ID, err)
		}
		wantKey, err := spec.AttackKey()
		if err != nil {
			t.Fatal(err)
		}
		if key != wantKey {
			t.Fatalf("%s: key did not survive the round trip", sc.ID)
		}
		if got.ID != sc.ID || got.Seed != sc.Seed || got.Kind != sc.Kind ||
			got.Ablation.Name != sc.Ablation.Name || got.Traces != sc.Traces ||
			got.Averages != sc.Averages || got.NoiseSigma != sc.NoiseSigma ||
			got.Synth != sc.Synth || got.KeyByte != sc.KeyByte || got.Rounds != sc.Rounds ||
			got.Reps != sc.Reps || got.Confidence != sc.Confidence ||
			got.Gadget != sc.Gadget || got.Ctr != sc.Ctr || got.Order != sc.Order {
			t.Fatalf("%s: scenario did not survive the round trip:\n got %+v\nwant %+v", sc.ID, got, sc)
		}
	}
}

// TestScenarioRequestRejectsTamperedID proves Resolve is
// self-validating: changing a result-affecting axis without respelling
// the ID (or vice versa) is refused, so a corrupted request cannot
// execute under the wrong seed.
func TestScenarioRequestRejectsTamperedID(t *testing.T) {
	spec := wireTestSpec(t)
	scenarios, err := spec.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	req := scenarios[2].WireRequest(spec.Name, spec.Seed, spec.Key) // fig3 with explicit axes
	req.Traces *= 2
	if _, _, err := req.Resolve(); err == nil {
		t.Fatal("tampered traces with a stale ID must be refused")
	}
	req = scenarios[2].WireRequest(spec.Name, spec.Seed, spec.Key)
	req.ID = scenarios[3].ID
	if _, _, err := req.Resolve(); err == nil {
		t.Fatal("an ID belonging to different axes must be refused")
	}
	req = scenarios[2].WireRequest(spec.Name, spec.Seed, spec.Key)
	req.Ablation = "definitely-not-a-toggle"
	if _, _, err := req.Resolve(); err == nil {
		t.Fatal("an unknown ablation must be refused")
	}
}

// TestMergeResultsIsCompletionOrderIndependent proves the merge seam
// orders by enumeration, not completion, and refuses holes and
// strays.
func TestMergeResultsIsCompletionOrderIndependent(t *testing.T) {
	spec := wireTestSpec(t)
	scenarios, err := spec.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]*ScenarioResult{}
	// Fill in reverse completion order with distinguishable stubs.
	for i := len(scenarios) - 1; i >= 0; i-- {
		byID[scenarios[i].ID] = &ScenarioResult{ID: scenarios[i].ID, Kind: scenarios[i].Kind, Seed: scenarios[i].Seed}
	}
	res, err := MergeResults(spec, scenarios, byID)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Scenarios {
		if res.Scenarios[i].ID != scenarios[i].ID {
			t.Fatalf("merge order slot %d: got %q want %q", i, res.Scenarios[i].ID, scenarios[i].ID)
		}
	}
	if res.SpecFingerprint != spec.Fingerprint() {
		t.Fatal("merge must stamp the spec fingerprint")
	}

	delete(byID, scenarios[0].ID)
	if _, err := MergeResults(spec, scenarios, byID); err == nil {
		t.Fatal("a missing scenario must fail the merge")
	}
	byID[scenarios[0].ID] = &ScenarioResult{ID: scenarios[0].ID}
	byID["stray"] = &ScenarioResult{ID: "stray"}
	if _, err := MergeResults(spec, scenarios, byID); err == nil {
		t.Fatal("a stray result must fail the merge")
	}
}
