package campaign

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/engine"
)

// RunOptions tunes one campaign execution without touching the spec (so
// the same committed spec can run checkpointed locally and plain in a
// test).
type RunOptions struct {
	// Workers overrides the spec's per-scenario engine pool size when
	// > 0. Results are bit-identical for any value.
	Workers int
	// Lanes sets the lane-parallel replay batch width (0: default,
	// negative: scalar per-trace replay). Results are bit-identical for
	// any value.
	Lanes int
	// Shards overrides the spec's scenario-level concurrency when > 0.
	// Results are bit-identical for any value.
	Shards int
	// CheckpointPath, when non-empty, appends each finished scenario to
	// a JSONL checkpoint file. With Resume set, scenarios already in the
	// file are loaded instead of re-executed.
	CheckpointPath string
	// Resume loads CheckpointPath before running. A checkpoint written
	// by a different spec (fingerprint mismatch) is refused.
	Resume bool
	// Log, when non-nil, receives one progress line per scenario.
	Log io.Writer
	// OnScenario, when non-nil, observes every completed scenario in
	// completion order; cached reports a checkpoint hit. Test hook and
	// progress seam — must be safe for concurrent calls when Shards > 1.
	OnScenario func(sr *ScenarioResult, cached bool)
	// Ctx, when non-nil, cancels the campaign: in-flight scenarios abort
	// between engine chunks and Run returns the context's error.
	// Already-checkpointed scenarios stay checkpointed, so a canceled
	// run resumes where it left off.
	Ctx context.Context
	// Gate, when non-nil, bounds trace-synthesis concurrency across
	// every campaign and request sharing it (see engine.Gate).
	Gate *engine.Gate
}

// checkpointHeader is the first line of a checkpoint file.
type checkpointHeader struct {
	Campaign        string `json:"campaign"`
	Seed            int64  `json:"seed"`
	SpecFingerprint string `json:"spec_fingerprint"`
}

// Checkpoint is the exported checkpoint seam: the JSONL scenario log
// shared by Run and the cluster coordinator, so a campaign interrupted
// under one executor resumes under the other. The format is one header
// line (campaign name, seed, spec fingerprint) followed by one
// ScenarioResult per line; every line is fsynced on its own.
type Checkpoint struct {
	w *checkpointWriter
}

// OpenCheckpoint opens (or creates) the checkpoint at path for spec.
// With resume set, previously completed scenarios are returned keyed by
// ID — a checkpoint written by a different spec is refused — and a torn
// final line from a hard kill is truncated away before appending
// continues.
func OpenCheckpoint(path string, spec *Spec, resume bool) (done map[string]*ScenarioResult, ck *Checkpoint, err error) {
	header := checkpointHeader{Campaign: spec.Name, Seed: spec.Seed, SpecFingerprint: spec.Fingerprint()}
	done = map[string]*ScenarioResult{}
	if resume {
		if done, err = loadCheckpoint(path, header); err != nil {
			return nil, nil, err
		}
	}
	w, err := newCheckpointWriter(path, header, resume && len(done) > 0)
	if err != nil {
		return nil, nil, err
	}
	return done, &Checkpoint{w: w}, nil
}

// Append durably records one finished scenario.
func (c *Checkpoint) Append(sr *ScenarioResult) error { return c.w.append(sr) }

// Close releases the underlying file.
func (c *Checkpoint) Close() error { return c.w.close() }

// loadCheckpoint reads a JSONL checkpoint, returning the completed
// scenarios keyed by ID. A missing file is an empty checkpoint.
func loadCheckpoint(path string, want checkpointHeader) (map[string]*ScenarioResult, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[string]*ScenarioResult{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	done := map[string]*ScenarioResult{}
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			var h checkpointHeader
			if err := json.Unmarshal(line, &h); err != nil {
				return nil, fmt.Errorf("campaign: checkpoint %s: bad header: %w", path, err)
			}
			if h != want {
				return nil, fmt.Errorf("campaign: checkpoint %s belongs to a different spec (campaign %q, fingerprint %.12s…)",
					path, h.Campaign, h.SpecFingerprint)
			}
			continue
		}
		var sr ScenarioResult
		if err := json.Unmarshal(line, &sr); err != nil {
			// A torn line — the trailing one from an interrupted run, or
			// a mid-file short write — only loses its own entry; entries
			// are keyed by scenario ID, so everything else stays usable
			// and the missing scenario simply re-executes.
			continue
		}
		done[sr.ID] = &sr
	}
	return done, sc.Err()
}

// checkpointWriter appends scenario lines to the checkpoint file under a
// lock (shards complete in nondeterministic order; the file is a cache,
// not a canonical artifact — Results ordering is what is canonical).
type checkpointWriter struct {
	mu sync.Mutex
	f  *os.File
}

func newCheckpointWriter(path string, h checkpointHeader, resumed bool) (*checkpointWriter, error) {
	if resumed {
		raw, err := os.ReadFile(path)
		if err == nil {
			// A hard kill can leave a torn, newline-less final line;
			// truncate to the last complete line so new records never
			// merge into the torn bytes (which would corrupt the file
			// for the next resume).
			valid := 0
			if i := bytes.LastIndexByte(raw, '\n'); i >= 0 {
				valid = i + 1
			}
			f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
			if err != nil {
				return nil, err
			}
			if err := f.Truncate(int64(valid)); err != nil {
				f.Close()
				return nil, err
			}
			if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
				f.Close()
				return nil, err
			}
			return &checkpointWriter{f: f}, nil
		}
		if !os.IsNotExist(err) {
			return nil, err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	raw, err := json.Marshal(h)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(append(raw, '\n')); err != nil {
		return nil, err
	}
	return &checkpointWriter{f: f}, nil
}

func (w *checkpointWriter) append(sr *ScenarioResult) error {
	raw, err := json.Marshal(sr)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(append(raw, '\n')); err != nil {
		return err
	}
	// Each line is durable on its own, so an interrupted campaign
	// resumes from the last finished scenario, not the last flush.
	return w.f.Sync()
}

func (w *checkpointWriter) close() error { return w.f.Close() }

// runShards maps work over idxs on a pool of n goroutines. The first
// error wins and is returned after the pool drains; once an error is
// recorded, remaining indexes are received but skipped, so neither the
// feeder nor a worker can block forever on a failing run.
func runShards(n int, idxs []int, work func(idx int) error) error {
	if n > len(idxs) {
		n = len(idxs)
	}
	if n < 1 {
		n = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	wg.Add(n)
	for s := 0; s < n; s++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				if failed() {
					continue // drain the queue without executing
				}
				if err := work(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for _, i := range idxs {
		if failed() {
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

// Run executes every scenario the spec enumerates — skipping the ones a
// resumed checkpoint already holds — and returns the campaign results
// in enumeration order. The returned Results (and hence their JSON, CSV
// and Markdown renderings) are byte-identical for any worker count,
// shard count, and resume point.
func Run(spec *Spec, opt RunOptions) (*Results, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	key, err := spec.AttackKey()
	if err != nil {
		return nil, err
	}
	scenarios, err := spec.Enumerate()
	if err != nil {
		return nil, err
	}

	workers := spec.Workers
	if opt.Workers > 0 {
		workers = opt.Workers
	}
	shards := spec.Shards
	if opt.Shards > 0 {
		shards = opt.Shards
	}
	if shards < 1 {
		shards = 1
	}
	if shards > len(scenarios) {
		shards = len(scenarios)
	}

	done := map[string]*ScenarioResult{}
	var ckpt *Checkpoint
	if opt.CheckpointPath != "" {
		if done, ckpt, err = OpenCheckpoint(opt.CheckpointPath, spec, opt.Resume); err != nil {
			return nil, err
		}
		defer ckpt.Close()
	}

	logf := func(format string, args ...any) {
		if opt.Log != nil {
			fmt.Fprintf(opt.Log, format+"\n", args...)
		}
	}

	results := make([]*ScenarioResult, len(scenarios))
	var pendingIdx []int
	for i := range scenarios {
		if sr, ok := done[scenarios[i].ID]; ok {
			results[i] = sr
			logf("[%3d/%d] %s: checkpointed, skipping", i+1, len(scenarios), scenarios[i].ID)
			if opt.OnScenario != nil {
				opt.OnScenario(sr, true)
			}
			continue
		}
		pendingIdx = append(pendingIdx, i)
	}

	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}

	// Shards pull scenario indexes from a channel; results land in their
	// enumeration slot, so completion order never reaches the artifacts.
	err = runShards(shards, pendingIdx, func(i int) error {
		sc := &scenarios[i]
		sr, err := ExecuteContext(ctx, sc, key, workers, opt.Lanes, opt.Gate)
		if err != nil {
			return err
		}
		results[i] = sr
		if ckpt != nil {
			if err := ckpt.Append(sr); err != nil {
				return fmt.Errorf("campaign: checkpoint: %w", err)
			}
		}
		logf("[%3d/%d] %s: %s", i+1, len(scenarios), sc.ID, sr.Headline())
		if opt.OnScenario != nil {
			opt.OnScenario(sr, false)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &Results{Campaign: spec.Name, Seed: spec.Seed, SpecFingerprint: spec.Fingerprint()}
	for _, sr := range results {
		out.Scenarios = append(out.Scenarios, *sr)
	}
	return out, nil
}

// EncodeJSON renders the results in the canonical indented form written
// to disk and compared byte-for-byte by the CI drift gate.
func (r *Results) EncodeJSON() []byte {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("campaign: encoding results: %v", err))
	}
	return append(raw, '\n')
}

// DecodeResults parses results previously written by EncodeJSON and
// validates the shape the renderers rely on — every scenario must carry
// the payload of its kind — so hand-edited or truncated files fail with
// an error instead of panicking a renderer.
func DecodeResults(raw []byte) (*Results, error) {
	var r Results
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("campaign: parsing results: %w", err)
	}
	for i := range r.Scenarios {
		sr := &r.Scenarios[i]
		var ok bool
		switch sr.Kind {
		case KindTable1:
			ok = sr.Table1 != nil
		case KindFigure2:
			ok = sr.Figure2 != nil
		case KindTable2:
			ok = sr.Table2 != nil
		case KindFig3:
			ok = sr.Fig3 != nil
		case KindFig4:
			ok = sr.Fig4 != nil
		case KindFullKey:
			ok = sr.FullKey != nil
		case KindRankEvo:
			ok = sr.RankEvo != nil && len(sr.RankEvo.Ranks) == len(sr.RankEvo.Counts)
		case KindMaskCPA:
			ok = sr.MaskCPA != nil
		case KindTVLA:
			ok = sr.TVLA != nil && len(sr.TVLA.Rows) > 0
		}
		if !ok {
			return nil, fmt.Errorf("campaign: scenario %d (%q) lacks a well-formed %s payload", i, sr.ID, sr.Kind)
		}
	}
	return &r, nil
}

// LoadResults reads a results JSON file.
func LoadResults(path string) (*Results, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeResults(raw)
}
