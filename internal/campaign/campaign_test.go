package campaign

import (
	"strings"
	"testing"
)

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec([]byte(`{"name":"x","seed":1,"workloads":[{"kind":"table1","tracez":[10]}]}`))
	if err == nil || !strings.Contains(err.Error(), "tracez") {
		t.Fatalf("want unknown-field error, got %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"no name", Spec{Workloads: []Workload{{Kind: KindTable1}}}, "needs a name"},
		{"no workloads", Spec{Name: "x"}, "at least one workload"},
		{"bad kind", Spec{Name: "x", Workloads: []Workload{{Kind: "tableX"}}}, "unknown kind"},
		{"bad ablation", Spec{Name: "x", Workloads: []Workload{{Kind: KindTable2, Ablations: []string{"warp-drive"}}}}, "unknown ablation"},
		{"tiny traces", Spec{Name: "x", Workloads: []Workload{{Kind: KindFig3, Traces: []int{3}}}}, "traces must be >= 8"},
		{"negative sigma", Spec{Name: "x", Workloads: []Workload{{Kind: KindFig3, NoiseSigmas: []float64{-2}}}}, "noise sigma"},
		{"bad synth", Spec{Name: "x", Workloads: []Workload{{Kind: KindFig3, Synth: []string{"psychic"}}}}, "unknown synthesis mode"},
		{"rankevo no counts", Spec{Name: "x", Workloads: []Workload{{Kind: KindRankEvo}}}, "needs counts"},
		{"rankevo with traces", Spec{Name: "x", Workloads: []Workload{{Kind: KindRankEvo, Counts: []int{50}, Traces: []int{100}}}}, "remove traces"},
		{"bad row", Spec{Name: "x", Workloads: []Workload{{Kind: KindTable2, Rows: []int{9}}}}, "out of [1,7]"},
		{"dup row", Spec{Name: "x", Workloads: []Workload{{Kind: KindTable2, Rows: []int{1, 1}}}}, "listed twice"},
		{"dup count", Spec{Name: "x", Workloads: []Workload{{Kind: KindRankEvo, Counts: []int{50, 50}}}}, "listed twice"},
		{"bad key", Spec{Name: "x", Key: "zz", Workloads: []Workload{{Kind: KindTable1}}}, "hex digits"},
		{"dup scenario", Spec{Name: "x", Workloads: []Workload{{Kind: KindTable1}, {Kind: KindTable1}}}, "duplicate scenario"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
}

func TestAblationExpansion(t *testing.T) {
	abs, err := expandAblations([]string{AllTogglesName})
	if err != nil {
		t.Fatal(err)
	}
	if len(abs) != 64 {
		t.Fatalf("all64 expanded to %d ablations", len(abs))
	}
	if abs[0].Name != PaperAblation {
		t.Fatalf("combination 0 is %q, want paper", abs[0].Name)
	}
	seen := map[string]bool{}
	for _, ab := range abs {
		if seen[ab.Name] {
			t.Fatalf("duplicate ablation %q", ab.Name)
		}
		seen[ab.Name] = true
	}
	// The paper config must be untouched; the full combination must flip
	// every toggle.
	if !abs[0].Core.DualIssue || !abs[0].Core.NopZeroesWB {
		t.Fatal("combination 0 does not match the default config")
	}
	last := abs[63]
	if last.Core.DualIssue || !last.Core.StructuralPolicyOnly || last.Core.AlignedPairs ||
		last.Core.NopZeroesWB || last.Core.AlignBuffer || last.Core.StoreLaneReplication {
		t.Fatalf("combination 63 (%q) did not flip every toggle", last.Name)
	}
}

func TestAblationCanonicalName(t *testing.T) {
	a, err := ParseAblation("no-align-buffer+scalar")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseAblation("scalar+no-align-buffer")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != b.Name {
		t.Fatalf("spellings canonicalize differently: %q vs %q", a.Name, b.Name)
	}
	if a.Name != "scalar+no-align-buffer" {
		t.Fatalf("canonical name %q not in registry order", a.Name)
	}
	if _, err := ParseAblation("scalar+scalar"); err == nil {
		t.Fatal("duplicate toggle accepted")
	}
}

func TestEnumerationCrossProduct(t *testing.T) {
	spec := Spec{
		Name: "x", Seed: 5,
		Workloads: []Workload{{
			Kind:        KindFig3,
			Ablations:   []string{"paper", "scalar"},
			Traces:      []int{100, 200},
			NoiseSigmas: []float64{0.5, 2},
			Synth:       []string{"auto", "simulate"},
			Rounds:      1,
		}},
	}
	scs, err := spec.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 16 {
		t.Fatalf("enumerated %d scenarios, want 2*2*2*2 = 16", len(scs))
	}
	ids := map[string]bool{}
	for _, sc := range scs {
		if ids[sc.ID] {
			t.Fatalf("duplicate ID %q", sc.ID)
		}
		ids[sc.ID] = true
	}
}

// Scenario seeds must be a function of (campaign seed, scenario ID)
// only: removing an unrelated workload from the spec must not shift the
// seeds of the survivors.
func TestScenarioSeedsStableAcrossSpecEdits(t *testing.T) {
	full := Spec{
		Name: "x", Seed: 9,
		Workloads: []Workload{
			{Kind: KindTable1},
			{Kind: KindFig3, Traces: []int{100}, Rounds: 1},
		},
	}
	trimmed := Spec{
		Name: "x", Seed: 9,
		Workloads: []Workload{
			{Kind: KindFig3, Traces: []int{100}, Rounds: 1},
		},
	}
	a, err := full.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := trimmed.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	seedOf := map[string]int64{}
	for _, sc := range a {
		seedOf[sc.ID] = sc.Seed
	}
	for _, sc := range b {
		if want, ok := seedOf[sc.ID]; ok && want != sc.Seed {
			t.Fatalf("scenario %q seed changed %d -> %d after a spec edit", sc.ID, want, sc.Seed)
		}
	}
	// And a different campaign seed must change every scenario seed.
	other := full
	other.Seed = 10
	c, err := other.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range c {
		if c[i].Seed == a[i].Seed {
			t.Fatalf("scenario %q seed survived a campaign-seed change", c[i].ID)
		}
	}
}

func TestSpecFingerprintDistinguishesSpecs(t *testing.T) {
	a := Spec{Name: "x", Seed: 1, Workloads: []Workload{{Kind: KindTable1}}}
	b := a
	b.Seed = 2
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different specs share a fingerprint")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint not stable")
	}
}
