package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/masking"
	"repro/internal/target"
)

// Scenario is one fully resolved experiment: a workload kind under one
// ablation with one acquisition-parameter point, plus the private seed
// it runs under. Scenarios are value objects — executing the same
// Scenario twice produces bit-identical results.
type Scenario struct {
	// ID is the canonical scenario identifier, unique within a campaign
	// and stable across spec edits that do not touch this scenario's own
	// axes — the key checkpoints and seeds are derived from.
	ID string
	// Index is the position in enumeration order (reports preserve it).
	Index int
	// Kind is the workload family.
	Kind Kind
	// Ablation is the resolved micro-architectural variant.
	Ablation Ablation
	// Traces is the acquisition count (0: workload default).
	Traces int
	// Averages is the per-acquisition averaging factor (0: default).
	Averages int
	// NoiseSigma is the measurement-noise override; SigmaDefault keeps
	// the power model's value.
	NoiseSigma float64
	// Synth is the trace-synthesis mode.
	Synth engine.Mode
	// Target is the attacked cipher in canonical spelling: the empty
	// string for the AES default (kept absent so pre-registry scenario
	// IDs, seeds and checkpoints are unchanged), the registry name
	// otherwise. Fig3/fullkey/rankevo only.
	Target string
	// KeyByte, Rounds, Reps, Rows, Counts, Confidence carry the
	// remaining workload knobs (see Workload).
	KeyByte    int
	Rounds     int
	Reps       int
	Rows       []int
	Counts     []int
	Confidence float64
	// Gadget, Ctr and Order are the maskcpa countermeasure axes: the
	// gadget schedule, the canonical countermeasure spelling, and the
	// CPA combining order (empty/zero outside maskcpa).
	Gadget string
	Ctr    string
	Order  int
	// Seed is the scenario's private seed, derived from the campaign
	// seed and ID — never from Index, so sibling scenarios keep their
	// seeds when the spec grows.
	Seed int64
}

func parseSynth(s string) (engine.Mode, error) {
	if s == "" {
		return engine.ModeAuto, nil
	}
	return engine.ParseMode(s)
}

// maskPoint is one resolved point of the maskcpa countermeasure axes.
type maskPoint struct {
	gadget string
	ctr    string
	order  int
}

// scenarioID renders the canonical identifier from the axes that
// distinguish the scenario. Axis order and spellings are frozen: IDs
// feed checkpoint matching and seed derivation.
func scenarioID(k Kind, ab string, w *Workload, traces int, sigma float64, synth engine.Mode, mp maskPoint, tgt string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s/ablation=%s", k, ab)
	if k != KindTable1 && k != KindFigure2 {
		if traces > 0 {
			fmt.Fprintf(&sb, "/traces=%d", traces)
		}
		if w.Averages > 0 {
			fmt.Fprintf(&sb, "/avg=%d", w.Averages)
		}
		if sigma != SigmaDefault {
			fmt.Fprintf(&sb, "/sigma=%s", strconv.FormatFloat(sigma, 'g', -1, 64))
		}
		if synth != engine.ModeAuto {
			fmt.Fprintf(&sb, "/synth=%s", synth)
		}
	}
	switch k {
	case KindTable1, KindFigure2:
		if w.Reps > 0 {
			fmt.Fprintf(&sb, "/reps=%d", w.Reps)
		}
	case KindMaskCPA:
		fmt.Fprintf(&sb, "/gadget=%s/ctr=%s/order=%d", mp.gadget, mp.ctr, mp.order)
		if w.KeyByte > 0 {
			fmt.Fprintf(&sb, "/keybyte=%d", w.KeyByte)
		}
	case KindTVLA, KindTable2:
		if len(w.Rows) > 0 {
			parts := make([]string, len(w.Rows))
			for i, r := range w.Rows {
				parts[i] = strconv.Itoa(r)
			}
			fmt.Fprintf(&sb, "/rows=%s", strings.Join(parts, ","))
		}
		if w.Confidence > 0 {
			fmt.Fprintf(&sb, "/conf=%s", strconv.FormatFloat(w.Confidence, 'g', -1, 64))
		}
	case KindFig3, KindFig4, KindFullKey, KindRankEvo:
		// The AES default is spelled absent, so every pre-registry ID —
		// and therefore every derived seed — is byte-unchanged.
		if tgt != "" {
			fmt.Fprintf(&sb, "/target=%s", tgt)
		}
		if w.KeyByte > 0 {
			fmt.Fprintf(&sb, "/keybyte=%d", w.KeyByte)
		}
		if w.Rounds > 0 {
			fmt.Fprintf(&sb, "/rounds=%d", w.Rounds)
		}
		if k == KindRankEvo {
			parts := make([]string, len(w.Counts))
			for i, c := range w.Counts {
				parts[i] = strconv.Itoa(c)
			}
			fmt.Fprintf(&sb, "/counts=%s", strings.Join(parts, ","))
		}
	}
	return sb.String()
}

// Enumerate expands the spec into its ordered scenario list: workloads
// in spec order, and within each workload the cross product
// ablations x traces x noise sigmas x synthesis modes, iterated in that
// nesting order. Duplicate scenario IDs are an error — two identical
// scenarios would be pure waste, and the ID is the checkpoint key.
func (s *Spec) Enumerate() ([]Scenario, error) {
	var out []Scenario
	seen := map[string]bool{}
	for wi := range s.Workloads {
		w := &s.Workloads[wi]
		abs, err := expandAblations(w.Ablations)
		if err != nil {
			return nil, fmt.Errorf("campaign: workload %d (%s): %w", wi, w.Kind, err)
		}
		traces := w.Traces
		if len(traces) == 0 {
			traces = []int{0}
		}
		sigmas := w.NoiseSigmas
		if len(sigmas) == 0 {
			sigmas = []float64{SigmaDefault}
		}
		synths := w.Synth
		if len(synths) == 0 {
			synths = []string{"auto"}
		}
		if w.Kind == KindTable1 || w.Kind == KindFigure2 {
			// Cycle-count workloads have no acquisition axes.
			traces, sigmas, synths = []int{0}, []float64{SigmaDefault}, []string{"auto"}
		}
		rows := append([]int(nil), w.Rows...)
		sort.Ints(rows)
		counts := append([]int(nil), w.Counts...)
		sort.Ints(counts)
		wc := *w
		wc.Rows, wc.Counts = rows, counts
		// The maskcpa countermeasure axes collapse to one empty point for
		// every other kind. Countermeasure spellings canonicalize here so
		// the ID (and thus the derived seed) never depends on how the
		// spec spelled the combination.
		// The target axis applies to the fig3-model attack kinds and
		// collapses to the single AES default elsewhere. Spellings
		// canonicalize here ("aes" and absent are the same point), so the
		// ID — and thus the derived seed — never depends on how the spec
		// spelled the default cipher.
		targets := []string{""}
		if len(w.Targets) > 0 {
			targets = targets[:0]
			for _, tn := range w.Targets {
				targets = append(targets, target.Canon(target.Resolve(tn)))
			}
		}
		points := []maskPoint{{}}
		if w.Kind == KindMaskCPA {
			points = points[:0]
			gadgets, ctrs, orders := w.maskAxes()
			for _, g := range gadgets {
				for _, c := range ctrs {
					ctr, err := masking.ParseCountermeasure(c)
					if err != nil {
						return nil, fmt.Errorf("campaign: workload %d (maskcpa): %w", wi, err)
					}
					for _, o := range orders {
						points = append(points, maskPoint{gadget: g, ctr: ctr.String(), order: o})
					}
				}
			}
		}
		for _, ab := range abs {
			for _, n := range traces {
				for _, sg := range sigmas {
					for _, sm := range synths {
						mode, err := parseSynth(sm)
						if err != nil {
							return nil, fmt.Errorf("campaign: workload %d (%s): %w", wi, w.Kind, err)
						}
						for _, mp := range points {
							for _, tg := range targets {
								id := scenarioID(w.Kind, ab.Name, &wc, n, sg, mode, mp, tg)
								if seen[id] {
									return nil, fmt.Errorf("campaign: duplicate scenario %q", id)
								}
								seen[id] = true
								out = append(out, Scenario{
									ID:         id,
									Index:      len(out),
									Kind:       w.Kind,
									Ablation:   ab,
									Traces:     n,
									Averages:   w.Averages,
									NoiseSigma: sg,
									Synth:      mode,
									Target:     tg,
									KeyByte:    w.KeyByte,
									Rounds:     w.Rounds,
									Reps:       w.Reps,
									Rows:       rows,
									Counts:     counts,
									Confidence: w.Confidence,
									Gadget:     mp.gadget,
									Ctr:        mp.ctr,
									Order:      mp.order,
									Seed:       engine.DeriveSeed(s.Seed, id),
								})
							}
						}
					}
				}
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("campaign: spec enumerates no scenarios")
	}
	return out, nil
}

// FilterTarget restricts the spec to one cipher target's scenarios:
// each workload that enumerates the named target keeps exactly that
// point of its targets axis, and workloads that never run it are
// dropped. Workloads without a targets axis run under the AES default,
// so they survive a filter for "aes" only. The surviving scenarios
// keep their IDs and derived seeds bit-for-bit — filtering selects
// scenarios, it never re-keys them.
func (s *Spec) FilterTarget(name string) error {
	if _, err := target.Get(name); err != nil {
		return err
	}
	want := target.Canon(target.Resolve(name))
	var kept []Workload
	for _, w := range s.Workloads {
		tgts := w.Targets
		if len(tgts) == 0 {
			tgts = []string{""}
		}
		for _, tn := range tgts {
			if target.Canon(target.Resolve(tn)) == want {
				wc := w
				if want == "" {
					wc.Targets = nil
				} else {
					wc.Targets = []string{want}
				}
				kept = append(kept, wc)
				break
			}
		}
	}
	if len(kept) == 0 {
		return fmt.Errorf("campaign: no workload runs target %s", target.Resolve(name))
	}
	s.Workloads = kept
	return nil
}

// CanonicalDigest returns the hex SHA-256 of v's canonical JSON
// encoding. encoding/json emits struct fields in declaration order and
// map keys sorted, so the digest is stable for a given value — the
// fingerprinting primitive shared by Spec.Fingerprint and the serving
// layer's request cache keys.
func CanonicalDigest(v any) string {
	raw, err := json.Marshal(v)
	if err != nil {
		// Spec and result types marshal by construction.
		panic(fmt.Sprintf("campaign: canonical encoding: %v", err))
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}
