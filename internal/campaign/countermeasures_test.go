package campaign

import (
	"strings"
	"testing"
)

// The maskcpa countermeasure axes expand as a cross product inside each
// acquisition point, with canonical countermeasure spellings in the ID.
func TestMaskCPAEnumeration(t *testing.T) {
	spec := Spec{
		Name: "x", Seed: 3,
		Workloads: []Workload{{
			Kind:            KindMaskCPA,
			Gadgets:         []string{"naive", "sbox"},
			Countermeasures: []string{"none", "shuffle+mask"},
			Orders:          []int{1, 2},
			Traces:          []int{100},
		}},
	}
	// shuffle applies to the eor schedules only, so validation must
	// reject the sbox x shuffle+mask combination...
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "shuffle") {
		t.Fatalf("sbox+shuffle combination accepted: %v", err)
	}
	// ...while the eor-only sweep enumerates the full cross product.
	spec.Workloads[0].Gadgets = []string{"naive", "separated"}
	scs, err := spec.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 8 {
		t.Fatalf("enumerated %d scenarios, want 2*2*2 = 8", len(scs))
	}
	wantID := "maskcpa/ablation=paper/traces=100/gadget=naive/ctr=none/order=1"
	if scs[0].ID != wantID {
		t.Fatalf("first scenario ID %q, want %q", scs[0].ID, wantID)
	}
	// The spec spelled "shuffle+mask"; the ID must carry the canonical
	// "mask+shuffle" so the derived seed is spelling-independent.
	found := false
	for _, sc := range scs {
		if strings.Contains(sc.ID, "ctr=mask+shuffle") {
			found = true
		}
		if strings.Contains(sc.ID, "ctr=shuffle+mask") {
			t.Fatalf("non-canonical countermeasure spelling in ID %q", sc.ID)
		}
	}
	if !found {
		t.Fatal("canonical mask+shuffle scenario missing")
	}
}

func TestMaskCPAAndTVLAValidation(t *testing.T) {
	mk := func(w Workload) Spec {
		return Spec{Name: "x", Workloads: []Workload{w}}
	}
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"unknown gadget", mk(Workload{Kind: KindMaskCPA, Gadgets: []string{"warp"}}), "unknown gadget"},
		{"bad ctr", mk(Workload{Kind: KindMaskCPA, Countermeasures: []string{"cloak"}}), "unknown countermeasure"},
		{"dup ctr spelling", mk(Workload{Kind: KindMaskCPA, Countermeasures: []string{"mask+jitter", "jitter+mask"}}), "listed twice"},
		{"bad order", mk(Workload{Kind: KindMaskCPA, Orders: []int{3}}), "order must be 1 or 2"},
		{"dup order", mk(Workload{Kind: KindMaskCPA, Orders: []int{1, 1}}), "listed twice"},
		{"gadgets on fig3", mk(Workload{Kind: KindFig3, Gadgets: []string{"sbox"}}), "maskcpa only"},
		{"orders on table2", mk(Workload{Kind: KindTable2, Orders: []int{2}}), "maskcpa only"},
		{"tvla confidence", mk(Workload{Kind: KindTVLA, Confidence: 0.99}), "remove confidence"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
	// The default axes (sbox, mask, order 1) must validate as-is.
	ok := mk(Workload{Kind: KindMaskCPA})
	ok.Seed = 1
	if err := ok.Validate(); err != nil {
		t.Fatalf("minimal maskcpa spec rejected: %v", err)
	}
	okT := mk(Workload{Kind: KindTVLA, Rows: []int{2}})
	if err := okT.Validate(); err != nil {
		t.Fatalf("minimal tvla spec rejected: %v", err)
	}
}

// Countermeasure and TVLA payloads survive the JSON round trip and
// render into their report sections.
func TestCountermeasureReportAndDecode(t *testing.T) {
	res := &Results{
		Campaign: "ctr", Seed: 1, SpecFingerprint: "0123456789abcdef",
		Scenarios: []ScenarioResult{
			{
				ID: "maskcpa/ablation=paper/traces=100/gadget=sbox/ctr=mask/order=1", Kind: KindMaskCPA,
				Ablation: PaperAblation, Traces: 100, Averages: 2, NoiseSigma: 1, Synth: "auto",
				MaskCPA: &MaskCPAResult{
					Gadget: "sbox", Ctr: "mask", Order: 1,
					TrueKey: "0x2b", Recovered: "0x91", Rank: 105, Success: false,
					BestCorr: 0.08, TrueCorr: 0.01, Confidence: 0.2, Traces: 100, Samples: 200,
				},
			},
			{
				ID: "maskcpa/ablation=paper/traces=100/gadget=sbox/ctr=mask/order=2", Kind: KindMaskCPA,
				Ablation: PaperAblation, Traces: 100, Averages: 2, NoiseSigma: 1, Synth: "auto",
				MaskCPA: &MaskCPAResult{
					Gadget: "sbox", Ctr: "mask", Order: 2,
					TrueKey: "0x2b", Recovered: "0x2b", Rank: 0, Success: true,
					BestCorr: -0.34, TrueCorr: -0.34, Confidence: 0.999, Traces: 100, Samples: 200, Pairs: 300,
				},
			},
			{
				ID: "tvla/ablation=paper/traces=120/rows=2", Kind: KindTVLA,
				Ablation: PaperAblation, Traces: 120, Averages: 2, NoiseSigma: 1, Synth: "auto",
				TVLA: &TVLAResult{
					Traces: 120, Averages: 2, Detected: 1,
					Rows: []TVLARow{{Row: 2, Name: "adds", MaxT: 12.3, Sample: 64, Detected: true, TracesPerGroup: 60}},
				},
			},
		},
	}
	if _, err := DecodeResults(res.EncodeJSON()); err != nil {
		t.Fatalf("round trip rejected: %v", err)
	}
	md := Report(res)
	for _, want := range []string{
		"## Countermeasure evaluation",
		"**Gadget `sbox`**",
		"key NOT recovered (rank 105)",
		"key recovered (0x2b)",
		"## TVLA — fixed-vs-random t-test",
		"`adds`",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Malformed payloads must be rejected.
	for _, raw := range []string{
		`{"campaign":"x","scenarios":[{"id":"a","kind":"maskcpa"}]}`,
		`{"campaign":"x","scenarios":[{"id":"a","kind":"tvla","tvla":{"rows":[]}}]}`,
	} {
		if _, err := DecodeResults([]byte(raw)); err == nil {
			t.Errorf("malformed results accepted: %s", raw)
		}
	}
}

// UpdateDocSections must leave unlisted regions byte-for-byte verbatim
// while regenerating the listed ones — the mechanism that lets the
// paper campaign and the countermeasure campaign share EXPERIMENTS.md.
func TestUpdateDocSectionsAllowList(t *testing.T) {
	doc := strings.Join([]string{
		"# Doc",
		"<!-- campaign:begin table2 -->",
		"stale table2 content",
		"<!-- campaign:end table2 -->",
		"<!-- campaign:begin countermeasures -->",
		"stale ctr content",
		"<!-- campaign:end countermeasures -->",
		"",
	}, "\n")
	res := fakeResults() // has table2, no maskcpa
	out, err := UpdateDocSections(doc, res, []string{"table2"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "stale table2 content") {
		t.Error("selected region not regenerated")
	}
	if !strings.Contains(out, "stale ctr content") {
		t.Error("unselected region was touched")
	}
	// The complement selection regenerates the other region (to empty —
	// fakeResults has no maskcpa scenarios) and restores the first.
	out2, err := UpdateDocSections(out, res, []string{"countermeasures"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out2, "stale ctr content") {
		t.Error("countermeasures region not regenerated")
	}
	if !strings.Contains(out2, "## Table 2") {
		t.Error("table2 region lost its generated content")
	}
	// A nil allow-list keeps UpdateDoc semantics: everything selected.
	all, err := UpdateDocSections(doc, res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(all, "stale table2 content") || strings.Contains(all, "stale ctr content") {
		t.Error("nil allow-list left stale content")
	}
}
