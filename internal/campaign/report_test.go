package campaign

import (
	"strings"
	"testing"
)

// fakeResults builds a small synthetic Results for renderer tests — no
// experiment execution involved.
func fakeResults() *Results {
	return &Results{
		Campaign: "fake", Seed: 1, SpecFingerprint: "abcdef0123456789",
		Scenarios: []ScenarioResult{
			{
				ID: "table2/ablation=paper", Kind: KindTable2, Ablation: PaperAblation,
				Traces: 100, Averages: 2, NoiseSigma: 1, Synth: "auto",
				Table2: &Table2Result{
					Traces: 100, Averages: 2, Match: 3, Total: 4,
					Rows: []Table2Row{{
						Row: 1, Name: "mov rA,rB", Dual: false, DualExpected: false,
						Cells: []Table2Cell{
							{Column: "Is/Ex Buffer", Expr: "rB", Scored: true, Expected: true, Detected: true, Match: true, Peak: 0.9, Confidence: 1},
							{Column: "Ex/Wb Buffer", Expr: "rB", Scored: true, Expected: true, Border: true, Detected: true, Match: true, Peak: 0.5, Confidence: 1},
							{Column: "Register File", Expr: "rB", Scored: true, Expected: false, Detected: true, Match: false, Peak: 0.2, Confidence: 1},
						},
					}},
				},
			},
			{
				ID: "fig4/ablation=scalar/traces=60", Kind: KindFig4, Ablation: "scalar",
				Traces: 60, Averages: 16, NoiseSigma: 1, Synth: "auto",
				Fig4: &AttackResult{KeyByte: 1, TrueKey: "0x7e", Recovered: "0x7e", Rank: 0, Success: true,
					BestCorr: 0.8, SecondCorr: 0.4, Confidence: 0.999, Traces: 60, Averages: 16},
			},
		},
	}
}

func TestReportRendersAllSections(t *testing.T) {
	md := Report(fakeResults())
	for _, want := range []string{
		"## Campaign summary",
		"## Table 2 — leakage characterization",
		"rB†",         // border rendering
		"(!rB)",       // mismatch rendering
		"## Figure 4", // fig4 section present
		"## Ablation sweep",
		"`scalar`",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Kinds with no scenarios must not leave empty section headers.
	if strings.Contains(md, "## Table 1") || strings.Contains(md, "## Figure 3") {
		t.Error("report renders sections for absent kinds")
	}
}

func TestRenderSectionUnknown(t *testing.T) {
	if _, err := RenderSection(fakeResults(), "tablez"); err == nil {
		t.Fatal("unknown section accepted")
	}
}

func TestUpdateDocSplicesAndIsIdempotent(t *testing.T) {
	doc := strings.Join([]string{
		"# Doc",
		"prose kept verbatim",
		"<!-- campaign:begin table2 -->",
		"stale generated content",
		"<!-- campaign:end table2 -->",
		"more prose",
		"<!-- campaign:begin fig4 -->",
		"<!-- campaign:end fig4 -->",
		"",
	}, "\n")
	res := fakeResults()
	once, err := UpdateDoc(doc, res)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(once, "stale generated content") {
		t.Error("stale content survived")
	}
	for _, want := range []string{"prose kept verbatim", "more prose", "## Table 2", "## Figure 4"} {
		if !strings.Contains(once, want) {
			t.Errorf("updated doc missing %q", want)
		}
	}
	twice, err := UpdateDoc(once, res)
	if err != nil {
		t.Fatal(err)
	}
	if twice != once {
		t.Error("UpdateDoc is not idempotent")
	}
}

func TestUpdateDocErrors(t *testing.T) {
	res := fakeResults()
	if _, err := UpdateDoc("<!-- campaign:begin nope -->\n<!-- campaign:end nope -->", res); err == nil {
		t.Error("unknown section name accepted")
	}
	if _, err := UpdateDoc("<!-- campaign:begin table2 -->\nno end", res); err == nil {
		t.Error("unterminated region accepted")
	}
	if _, err := UpdateDoc("<!-- campaign:end table2 -->", res); err == nil {
		t.Error("stray end marker accepted")
	}
	if _, err := UpdateDoc("<!-- campaign:begin table2 -->\n<!-- campaign:begin fig4 -->\n<!-- campaign:end table2 -->", res); err == nil {
		t.Error("nested begin accepted")
	}
}

// TestDecodeResultsRejectsMalformedPayloads: the render-from-disk path
// must error on results whose scenarios lack their kind's payload
// rather than panic a renderer.
func TestDecodeResultsRejectsMalformedPayloads(t *testing.T) {
	cases := []string{
		`{"campaign":"x","scenarios":[{"id":"a","kind":"table1"}]}`,
		`{"campaign":"x","scenarios":[{"id":"a","kind":"rankevo","rankevo":{"counts":[10,20],"ranks":[0]}}]}`,
	}
	for _, raw := range cases {
		if _, err := DecodeResults([]byte(raw)); err == nil {
			t.Errorf("malformed results accepted: %s", raw)
		}
	}
	// The round trip of real results must still decode.
	res := fakeResults()
	if _, err := DecodeResults(res.EncodeJSON()); err != nil {
		t.Errorf("well-formed results rejected: %v", err)
	}
}

func TestCSVShape(t *testing.T) {
	res := fakeResults()
	csv := res.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if lines[0] != "scenario,kind,ablation,traces,averages,noise_sigma,synth,metric,value" {
		t.Fatalf("unexpected header %q", lines[0])
	}
	if len(lines) < 5 {
		t.Fatalf("CSV suspiciously short:\n%s", csv)
	}
	for _, l := range lines[1:] {
		if got := strings.Count(l, ","); got != 8 {
			t.Errorf("row %q has %d commas, want 8", l, got)
		}
	}
}
