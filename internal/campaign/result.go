package campaign

import (
	"fmt"
	"strconv"
	"strings"
)

// Table1Cell is one serialized cell of the dual-issue matrix.
type Table1Cell struct {
	// Older and Younger name the instruction classes of the ordered pair.
	Older   string `json:"older"`
	Younger string `json:"younger"`
	// CPI and HazardCPI are the hazard-free and RAW-laden measurements.
	CPI       float64 `json:"cpi"`
	HazardCPI float64 `json:"hazard_cpi"`
	// Dual is the measured verdict; Paper the published Table 1 cell.
	Dual  bool `json:"dual"`
	Paper bool `json:"paper"`
}

// Table1Result is the campaign form of one CPI-matrix run.
type Table1Result struct {
	Reps  int          `json:"reps"`
	Cells []Table1Cell `json:"cells"`
	// Match and Total count cells agreeing with the published Table 1.
	Match int `json:"match"`
	Total int `json:"total"`
}

// Figure2Result is the campaign form of one pipeline-structure
// inference.
type Figure2Result struct {
	DualIssue       bool   `json:"dual_issue"`
	FetchWidth      int    `json:"fetch_width"`
	NumALUs         int    `json:"num_alus"`
	ALUsSymmetric   bool   `json:"alus_symmetric"`
	ReadPorts       int    `json:"read_ports"`
	WritePorts      int    `json:"write_ports"`
	LSUPipelined    bool   `json:"lsu_pipelined"`
	MulPipelined    bool   `json:"mul_pipelined"`
	AGUInIssueStage bool   `json:"agu_in_issue_stage"`
	NopsDualIssued  bool   `json:"nops_dual_issued"`
	MatchesPaper    bool   `json:"matches_paper"`
	Disagreement    string `json:"disagreement,omitempty"`
}

// Table2Cell is one serialized (component, expression) verdict.
type Table2Cell struct {
	Column string `json:"column"`
	Expr   string `json:"expr"`
	// Scored marks cells counted toward the Table 2 agreement figure.
	Scored bool `json:"scored"`
	// Expected and Detected are the paper's and the measured verdicts;
	// Border marks a † (flushing-nop) expectation.
	Expected bool `json:"expected"`
	Border   bool `json:"border"`
	Detected bool `json:"detected"`
	Match    bool `json:"match"`
	// Peak is the windowed peak correlation, Confidence its Fisher-z
	// confidence.
	Peak       float64 `json:"peak"`
	Confidence float64 `json:"confidence"`
}

// Table2Row is one serialized benchmark row of the leakage scan.
type Table2Row struct {
	Row          int          `json:"row"`
	Name         string       `json:"name"`
	Dual         bool         `json:"dual"`
	DualExpected bool         `json:"dual_expected"`
	Cells        []Table2Cell `json:"cells"`
}

// Table2Result is the campaign form of one leakage characterization.
type Table2Result struct {
	Traces   int         `json:"traces"`
	Averages int         `json:"averages"`
	Rows     []Table2Row `json:"rows"`
	// Match and Total count scored cells (plus dual-issue columns)
	// agreeing with the published Table 2.
	Match int `json:"match"`
	Total int `json:"total"`
}

// Region is one annotated cipher-primitive window of a Figure 3 curve.
type Region struct {
	Name     string  `json:"name"`
	Round    int     `json:"round"`
	StartUs  float64 `json:"start_us"`
	EndUs    float64 `json:"end_us"`
	PeakCorr float64 `json:"peak_corr"`
	PeakUs   float64 `json:"peak_us"`
}

// AttackResult is the campaign form of one single-byte CPA (Figure 3 or
// Figure 4).
type AttackResult struct {
	KeyByte   int    `json:"key_byte"`
	TrueKey   string `json:"true_key"`
	Recovered string `json:"recovered"`
	Rank      int    `json:"rank"`
	Success   bool   `json:"success"`
	// BestCorr and SecondCorr are the top two hypothesis correlations
	// (Figure 4); Confidence distinguishes them.
	BestCorr   float64 `json:"best_corr,omitempty"`
	SecondCorr float64 `json:"second_corr,omitempty"`
	Confidence float64 `json:"confidence"`
	Traces     int     `json:"traces"`
	Averages   int     `json:"averages"`
	// Regions annotate the Figure 3 correlation curve.
	Regions []Region `json:"regions,omitempty"`
	// Replayed reports compiled-replay synthesis; FallbackReason an
	// auto-mode fallback.
	Replayed       bool   `json:"replayed"`
	FallbackReason string `json:"fallback_reason,omitempty"`
}

// FullKeyResult is the campaign form of a sixteen-byte recovery.
type FullKeyResult struct {
	Traces          int     `json:"traces"`
	Key             string  `json:"key"`
	Recovered       string  `json:"recovered"`
	BytesRecovered  int     `json:"bytes_recovered"`
	Ranks           []int   `json:"ranks"`
	GuessingEntropy float64 `json:"guessing_entropy"`
	Success         bool    `json:"success"`
}

// RankEvoResult is the campaign form of a rank-evolution run.
type RankEvoResult struct {
	KeyByte int   `json:"key_byte"`
	Counts  []int `json:"counts"`
	Ranks   []int `json:"ranks"`
	// FirstSuccess is the smallest checkpointed trace count with rank 0
	// (-1 when the key was never recovered).
	FirstSuccess int `json:"first_success"`
}

// MaskCPAResult is the campaign form of one keyed countermeasure
// evaluation (masking.EvaluateKeyedCPA).
type MaskCPAResult struct {
	// Gadget, Ctr and Order echo the scenario's countermeasure axes.
	Gadget string `json:"gadget"`
	Ctr    string `json:"ctr"`
	Order  int    `json:"order"`
	// TrueKey is the attacked key byte, Recovered the best-ranked
	// hypothesis, Rank the true key's 0-based rank.
	TrueKey   string `json:"true_key"`
	Recovered string `json:"recovered"`
	Rank      int    `json:"rank"`
	Success   bool   `json:"success"`
	// BestCorr and TrueCorr are the winning and true-key peak
	// correlations; Confidence distinguishes winner from runner-up.
	BestCorr   float64 `json:"best_corr"`
	TrueCorr   float64 `json:"true_corr"`
	Confidence float64 `json:"confidence"`
	Traces     int     `json:"traces"`
	Samples    int     `json:"samples"`
	// Pairs is the centered-product pair count (0 at first order).
	Pairs int `json:"pairs,omitempty"`
}

// TVLARow is one benchmark row of a fixed-vs-random t-test workload.
type TVLARow struct {
	Row  int    `json:"row"`
	Name string `json:"name"`
	// MaxT is the largest absolute t statistic; Sample its index.
	MaxT   float64 `json:"max_t"`
	Sample int     `json:"sample"`
	// Detected applies the conventional |t| > 4.5 threshold.
	Detected       bool `json:"detected"`
	TracesPerGroup int  `json:"traces_per_group"`
}

// TVLAResult is the campaign form of one TVLA workload.
type TVLAResult struct {
	Traces   int       `json:"traces"`
	Averages int       `json:"averages"`
	Rows     []TVLARow `json:"rows"`
	// Detected counts rows above threshold.
	Detected int `json:"detected"`
}

// ScenarioResult is one executed scenario: its identity axes plus
// exactly one kind-specific payload. Every field is a deterministic
// function of (Spec, scenario ID) — wall-clock time and host identity
// are deliberately absent so artifacts are comparable across machines
// and runs.
type ScenarioResult struct {
	ID       string `json:"id"`
	Kind     Kind   `json:"kind"`
	Ablation string `json:"ablation"`
	// Target is the attacked cipher in canonical spelling — absent for
	// the AES default, so every pre-registry result is byte-unchanged.
	Target string `json:"target,omitempty"`
	Seed   int64  `json:"seed"`
	// Traces/Averages/NoiseSigma/Synth record the resolved acquisition
	// point after defaults were applied (all zero for the cycle-count
	// kinds, which have no acquisition axes).
	Traces     int     `json:"traces"`
	Averages   int     `json:"averages"`
	NoiseSigma float64 `json:"noise_sigma"`
	Synth      string  `json:"synth"`

	Table1  *Table1Result  `json:"table1,omitempty"`
	Figure2 *Figure2Result `json:"figure2,omitempty"`
	Table2  *Table2Result  `json:"table2,omitempty"`
	Fig3    *AttackResult  `json:"fig3,omitempty"`
	Fig4    *AttackResult  `json:"fig4,omitempty"`
	FullKey *FullKeyResult `json:"fullkey,omitempty"`
	RankEvo *RankEvoResult `json:"rankevo,omitempty"`
	MaskCPA *MaskCPAResult `json:"maskcpa,omitempty"`
	TVLA    *TVLAResult    `json:"tvla,omitempty"`
}

// Results is a campaign's complete structured outcome, ordered by
// scenario enumeration order. It is the single source the CSV, the
// Markdown report and the regenerated EXPERIMENTS.md sections derive
// from.
type Results struct {
	// Campaign and Seed echo the spec.
	Campaign string `json:"campaign"`
	Seed     int64  `json:"seed"`
	// SpecFingerprint ties the results to the exact spec that produced
	// them (Spec.Fingerprint).
	SpecFingerprint string `json:"spec_fingerprint"`
	// Scenarios are the executed scenarios in enumeration order.
	Scenarios []ScenarioResult `json:"scenarios"`
}

// fmtFloat renders a float64 in the canonical shortest form shared by
// the CSV and Markdown emitters.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// csvEscape quotes a CSV field when needed.
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// CSV renders the results as a long-format table — one row per
// (scenario, metric) — with the header
// scenario,kind,ablation,traces,averages,noise_sigma,synth,metric,value.
// The row order follows scenario enumeration order and a fixed
// per-kind metric order, so the output is byte-stable.
func (r *Results) CSV() string {
	var sb strings.Builder
	sb.WriteString("scenario,kind,ablation,traces,averages,noise_sigma,synth,metric,value\n")
	for i := range r.Scenarios {
		sr := &r.Scenarios[i]
		prefix := fmt.Sprintf("%s,%s,%s,%d,%d,%s,%s",
			csvEscape(sr.ID), sr.Kind, csvEscape(sr.Ablation),
			sr.Traces, sr.Averages, fmtFloat(sr.NoiseSigma), sr.Synth)
		row := func(metric, value string) {
			fmt.Fprintf(&sb, "%s,%s,%s\n", prefix, csvEscape(metric), csvEscape(value))
		}
		num := func(metric string, v float64) { row(metric, fmtFloat(v)) }
		count := func(metric string, v int) { row(metric, strconv.Itoa(v)) }
		boolean := func(metric string, v bool) { row(metric, strconv.FormatBool(v)) }
		switch {
		case sr.Table1 != nil:
			count("table1_match", sr.Table1.Match)
			count("table1_total", sr.Table1.Total)
			for _, c := range sr.Table1.Cells {
				num("cpi:"+c.Older+"|"+c.Younger, c.CPI)
			}
		case sr.Figure2 != nil:
			boolean("figure2_matches_paper", sr.Figure2.MatchesPaper)
		case sr.Table2 != nil:
			count("table2_match", sr.Table2.Match)
			count("table2_total", sr.Table2.Total)
			for _, rw := range sr.Table2.Rows {
				for _, c := range rw.Cells {
					if !c.Scored {
						continue
					}
					num(fmt.Sprintf("peak:row%d:%s:%s", rw.Row, c.Column, c.Expr), c.Peak)
				}
			}
		case sr.Fig3 != nil:
			count("rank", sr.Fig3.Rank)
			boolean("success", sr.Fig3.Success)
			num("confidence", sr.Fig3.Confidence)
			for _, reg := range sr.Fig3.Regions {
				num(fmt.Sprintf("region_peak:%s%d", reg.Name, reg.Round), reg.PeakCorr)
			}
			boolean("replayed", sr.Fig3.Replayed)
		case sr.Fig4 != nil:
			count("rank", sr.Fig4.Rank)
			boolean("success", sr.Fig4.Success)
			num("best_corr", sr.Fig4.BestCorr)
			num("second_corr", sr.Fig4.SecondCorr)
			num("confidence", sr.Fig4.Confidence)
			boolean("replayed", sr.Fig4.Replayed)
		case sr.FullKey != nil:
			count("bytes_recovered", sr.FullKey.BytesRecovered)
			num("guessing_entropy", sr.FullKey.GuessingEntropy)
			boolean("success", sr.FullKey.Success)
		case sr.RankEvo != nil:
			for j, c := range sr.RankEvo.Counts {
				count(fmt.Sprintf("rank@%d", c), sr.RankEvo.Ranks[j])
			}
			count("first_success", sr.RankEvo.FirstSuccess)
		case sr.MaskCPA != nil:
			count("rank", sr.MaskCPA.Rank)
			boolean("success", sr.MaskCPA.Success)
			num("best_corr", sr.MaskCPA.BestCorr)
			num("true_corr", sr.MaskCPA.TrueCorr)
			num("confidence", sr.MaskCPA.Confidence)
			count("pairs", sr.MaskCPA.Pairs)
		case sr.TVLA != nil:
			count("tvla_detected", sr.TVLA.Detected)
			for _, rw := range sr.TVLA.Rows {
				num(fmt.Sprintf("max_t:row%d:%s", rw.Row, rw.Name), rw.MaxT)
			}
		}
	}
	return sb.String()
}
