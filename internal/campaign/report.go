package campaign

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/target"
)

// SectionNames lists the report fragments that can be rendered on their
// own and spliced into documentation between campaign markers, in the
// order Report concatenates them.
func SectionNames() []string {
	return []string{"summary", "table1", "figure2", "table2", "fig3", "fig4", "keyrank", "targets", "countermeasures", "tvla", "ablations"}
}

// RenderSection renders one named fragment of the results as Markdown.
// Rendering is a pure function of the results, so a fragment is
// byte-identical however many workers or shards produced them.
func RenderSection(r *Results, name string) (string, error) {
	switch name {
	case "summary":
		return renderSummary(r), nil
	case "table1":
		return renderTable1(r), nil
	case "figure2":
		return renderFigure2(r), nil
	case "table2":
		return renderTable2(r), nil
	case "fig3":
		return renderFig3(r), nil
	case "fig4":
		return renderFig4(r), nil
	case "keyrank":
		return renderKeyRank(r), nil
	case "targets":
		return renderTargets(r), nil
	case "countermeasures":
		return renderCountermeasures(r), nil
	case "tvla":
		return renderTVLA(r), nil
	case "ablations":
		return renderAblations(r), nil
	}
	return "", fmt.Errorf("campaign: unknown report section %q", name)
}

// Report renders the complete Markdown report: every section, in
// SectionNames order, under one campaign header.
func Report(r *Results) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# Campaign report — %s\n\n", r.Campaign)
	for _, name := range SectionNames() {
		s, err := RenderSection(r, name)
		if err != nil {
			// All names come from SectionNames.
			panic(err)
		}
		if s == "" {
			continue
		}
		sb.WriteString(s)
		if !strings.HasSuffix(s, "\n\n") {
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// scenariosOf selects scenarios of one kind, preserving order.
func scenariosOf(r *Results, k Kind) []*ScenarioResult {
	var out []*ScenarioResult
	for i := range r.Scenarios {
		if r.Scenarios[i].Kind == k {
			out = append(out, &r.Scenarios[i])
		}
	}
	return out
}

// aesOnly drops the non-AES target scenarios: the AES-titled report
// sections keep their pre-registry content and the targets section owns
// the rest.
func aesOnly(ss []*ScenarioResult) []*ScenarioResult {
	var out []*ScenarioResult
	for _, sr := range ss {
		if sr.Target == "" {
			out = append(out, sr)
		}
	}
	return out
}

// acqDesc renders a scenario's acquisition point compactly.
func (sr *ScenarioResult) acqDesc() string {
	if sr.Kind == KindTable1 || sr.Kind == KindFigure2 {
		return "cycle-accurate (no acquisition)"
	}
	return fmt.Sprintf("%d traces ×%d avg, σ=%s, synth %s", sr.Traces, sr.Averages, fmtFloat(sr.NoiseSigma), sr.Synth)
}

func renderSummary(r *Results) string {
	var sb strings.Builder
	sb.WriteString("## Campaign summary\n\n")
	fmt.Fprintf(&sb, "Campaign `%s`, seed %d, %d scenarios, spec fingerprint `%.12s`.\n",
		r.Campaign, r.Seed, len(r.Scenarios), r.SpecFingerprint)
	sb.WriteString("Every number below is a deterministic function of the spec: per-scenario\n")
	sb.WriteString("seeds derive from (campaign seed, scenario ID), and all artifacts are\n")
	sb.WriteString("byte-identical for any worker or shard count.\n\n")
	sb.WriteString("| # | scenario | headline |\n|---|---|---|\n")
	for i := range r.Scenarios {
		sr := &r.Scenarios[i]
		fmt.Fprintf(&sb, "| %d | `%s` | %s |\n", i, sr.ID, sr.Headline())
	}
	return sb.String()
}

// table1Grid renders the dual-issue matrix of one scenario.
func table1Grid(t *Table1Result) string {
	// Cells are older-class-major over the n Table 1 classes, so the
	// first n Younger entries name the columns (and, symmetrically, the
	// rows).
	n := 1
	for n*n < len(t.Cells) {
		n++
	}
	if len(t.Cells) == 0 || n*n != len(t.Cells) {
		// Hand-edited or truncated results: degrade gracefully — this
		// renderer also runs on files loaded from disk.
		return fmt.Sprintf("_malformed matrix: %d cells_\n", len(t.Cells))
	}
	classes := make([]string, n)
	for j := 0; j < n; j++ {
		classes[j] = t.Cells[j].Younger
	}
	var sb strings.Builder
	sb.WriteString("| older \\ younger |")
	for _, c := range classes {
		fmt.Fprintf(&sb, " %s |", c)
	}
	sb.WriteString("\n|---|")
	sb.WriteString(strings.Repeat("---|", n))
	sb.WriteString("\n")
	for i, older := range classes {
		fmt.Fprintf(&sb, "| **%s** |", older)
		for j := range classes {
			c := t.Cells[i*n+j]
			mark := "✗"
			if c.Dual {
				mark = "✓"
			}
			cell := fmt.Sprintf(" %s %.2f", mark, c.CPI)
			if c.Dual != c.Paper {
				cell += " (≠paper)"
			}
			sb.WriteString(cell + " |")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func renderTable1(r *Results) string {
	ss := scenariosOf(r, KindTable1)
	if len(ss) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("## Table 1 — dual-issue matrix (§3.2)\n\n")
	for _, sr := range ss {
		t := sr.Table1
		fmt.Fprintf(&sb, "**Ablation `%s`** (%d reps/pair): %d/%d cells match the published Table 1.\n\n",
			sr.Ablation, t.Reps, t.Match, t.Total)
		if sr.Ablation == PaperAblation {
			sb.WriteString(table1Grid(t))
			sb.WriteString("\n")
		} else if t.Match != t.Total {
			var flipped []string
			for _, c := range t.Cells {
				if c.Dual != c.Paper {
					flipped = append(flipped, fmt.Sprintf("(%s, %s)", c.Older, c.Younger))
				}
			}
			fmt.Fprintf(&sb, "Flipped cells: %s.\n\n", strings.Join(flipped, ", "))
		}
	}
	return sb.String()
}

func renderFigure2(r *Results) string {
	ss := scenariosOf(r, KindFigure2)
	if len(ss) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("## Figure 2 — inferred pipeline structure (§3)\n\n")
	for _, sr := range ss {
		f := sr.Figure2
		fmt.Fprintf(&sb, "**Ablation `%s`**: matches the paper's Figure 2: **%v**", sr.Ablation, f.MatchesPaper)
		if !f.MatchesPaper {
			fmt.Fprintf(&sb, " (%s)", f.Disagreement)
		}
		sb.WriteString("\n\n")
		if sr.Ablation == PaperAblation {
			fmt.Fprintf(&sb, "| property | inferred |\n|---|---|\n")
			fmt.Fprintf(&sb, "| dual issue | %v (fetch width %d) |\n", f.DualIssue, f.FetchWidth)
			fmt.Fprintf(&sb, "| ALUs | %d, symmetric: %v |\n", f.NumALUs, f.ALUsSymmetric)
			fmt.Fprintf(&sb, "| RF read / write ports | %d / %d |\n", f.ReadPorts, f.WritePorts)
			fmt.Fprintf(&sb, "| LSU pipelined | %v |\n", f.LSUPipelined)
			fmt.Fprintf(&sb, "| multiplier pipelined | %v |\n", f.MulPipelined)
			fmt.Fprintf(&sb, "| AGU in issue stage | %v |\n", f.AGUInIssueStage)
			fmt.Fprintf(&sb, "| nops dual-issued | %v |\n\n", f.NopsDualIssued)
		}
	}
	return sb.String()
}

// table2Columns is the fixed column order of the Table 2 grid.
var table2Columns = []string{
	"Register File", "Is/Ex Buffer", "Shift Buffer", "ALU Buffer",
	"Ex/Wb Buffer", "MDR", "Align Buffer",
}

// table2Grid renders one scan as the paper's Table 2 shape: benchmark
// rows × component columns, cells listing the detected scored
// expressions († for border effects, (!) for disagreements with the
// paper).
func table2Grid(t *Table2Result) string {
	var sb strings.Builder
	sb.WriteString("| # | benchmark | dual |")
	for _, c := range table2Columns {
		fmt.Fprintf(&sb, " %s |", c)
	}
	sb.WriteString("\n|---|---|---|")
	sb.WriteString(strings.Repeat("---|", len(table2Columns)))
	sb.WriteString("\n")
	for _, row := range t.Rows {
		dual := "✗"
		if row.Dual {
			dual = "✓"
		}
		if row.Dual != row.DualExpected {
			dual += " (!)"
		}
		fmt.Fprintf(&sb, "| %d | `%s` | %s |", row.Row, row.Name, dual)
		for _, col := range table2Columns {
			var parts []string
			for _, c := range row.Cells {
				if c.Column != col || !c.Scored {
					continue
				}
				switch {
				case !c.Match:
					parts = append(parts, "(!"+c.Expr+")")
				case c.Detected && c.Border && !strings.HasSuffix(c.Expr, "†"):
					parts = append(parts, c.Expr+"†")
				case c.Detected:
					parts = append(parts, c.Expr)
				}
			}
			if len(parts) == 0 {
				sb.WriteString(" · |")
			} else {
				fmt.Fprintf(&sb, " %s |", strings.Join(parts, ", "))
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// table2Magnitudes renders, per row, the strongest detected scored
// expression — the representative correlation magnitudes.
func table2Magnitudes(t *Table2Result) string {
	var sb strings.Builder
	sb.WriteString("| row | strongest effect | r | confidence |\n|---|---|---|---|\n")
	for _, row := range t.Rows {
		best := -1
		for i, c := range row.Cells {
			if !c.Scored || !c.Detected {
				continue
			}
			if best < 0 || math.Abs(c.Peak) > math.Abs(row.Cells[best].Peak) {
				best = i
			}
		}
		if best < 0 {
			fmt.Fprintf(&sb, "| %d | _none detected_ | — | — |\n", row.Row)
			continue
		}
		c := row.Cells[best]
		fmt.Fprintf(&sb, "| %d | %s `%s` | %+.3f | %.4f |\n", row.Row, c.Column, c.Expr, c.Peak, c.Confidence)
	}
	return sb.String()
}

func renderTable2(r *Results) string {
	ss := scenariosOf(r, KindTable2)
	if len(ss) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("## Table 2 — leakage characterization (§4)\n\n")
	var compact []*ScenarioResult
	for _, sr := range ss {
		if sr.Ablation != PaperAblation {
			compact = append(compact, sr)
			continue
		}
		t := sr.Table2
		fmt.Fprintf(&sb, "**Ablation `paper`** — %s: scored agreement with Table 2 **%d/%d**.\n\n",
			sr.acqDesc(), t.Match, t.Total)
		sb.WriteString(table2Grid(t))
		sb.WriteString("\nCells list the detected scored model expressions; † marks border\n")
		sb.WriteString("effects of the flushing nops, (!) a disagreement with the paper, · no\n")
		sb.WriteString("detected leak.\n\n")
		sb.WriteString("Representative magnitudes:\n\n")
		sb.WriteString(table2Magnitudes(t))
		sb.WriteString("\n")
	}
	if len(compact) > 0 {
		sb.WriteString("Ablated scans:\n\n")
		sb.WriteString("| ablation | acquisition | agreement vs paper Table 2 |\n|---|---|---|\n")
		for _, sr := range compact {
			fmt.Fprintf(&sb, "| `%s` | %s | %d/%d |\n", sr.Ablation, sr.acqDesc(), sr.Table2.Match, sr.Table2.Total)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func attackLine(sr *ScenarioResult, a *AttackResult) string {
	status := "recovered"
	if !a.Success {
		status = fmt.Sprintf("NOT recovered (rank %d)", a.Rank)
	}
	return fmt.Sprintf("| `%s` | %s | %s | key byte %d %s | %.4f |",
		sr.Ablation, sr.acqDesc(), a.Recovered, a.KeyByte, status, a.Confidence)
}

func renderFig3(r *Results) string {
	ss := aesOnly(scenariosOf(r, KindFig3))
	if len(ss) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("## Figure 3 — bare-metal AES CPA (§5)\n\n")
	sb.WriteString("Model: HW(SubBytes output), micro-architecture-agnostic.\n\n")
	sb.WriteString("| ablation | acquisition | top guess | outcome | confidence |\n|---|---|---|---|---|\n")
	for _, sr := range ss {
		sb.WriteString(attackLine(sr, sr.Fig3) + "\n")
	}
	sb.WriteString("\n")
	for _, sr := range ss {
		if sr.Ablation != PaperAblation || len(sr.Fig3.Regions) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "Primitive regions and peak correlation of the correct key (`%s`, %s):\n\n", sr.Ablation, sr.acqDesc())
		sb.WriteString("| region | round | window (µs) | peak r | at (µs) |\n|---|---|---|---|---|\n")
		for _, reg := range sr.Fig3.Regions {
			fmt.Fprintf(&sb, "| %s | %d | %.2f .. %.2f | %+.3f | %.2f |\n",
				reg.Name, reg.Round, reg.StartUs, reg.EndUs, reg.PeakCorr, reg.PeakUs)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func renderFig4(r *Results) string {
	ss := scenariosOf(r, KindFig4)
	if len(ss) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("## Figure 4 — loaded-Linux AES CPA (§5)\n\n")
	sb.WriteString("Model: HD(consecutive SubBytes stores) under the loaded-Linux\n")
	sb.WriteString("environment (raised noise floor, preemptions, jitter).\n\n")
	sb.WriteString("| ablation | acquisition | top guess | outcome | best r | runner-up r | confidence |\n|---|---|---|---|---|---|---|\n")
	for _, sr := range ss {
		a := sr.Fig4
		status := "recovered"
		if !a.Success {
			status = fmt.Sprintf("NOT recovered (rank %d)", a.Rank)
		}
		fmt.Fprintf(&sb, "| `%s` | %s | %s | key byte %d %s | %.3f | %.3f | %.4f |\n",
			sr.Ablation, sr.acqDesc(), a.Recovered, a.KeyByte, status, a.BestCorr, a.SecondCorr, a.Confidence)
	}
	sb.WriteString("\n")
	return sb.String()
}

func renderKeyRank(r *Results) string {
	fk := aesOnly(scenariosOf(r, KindFullKey))
	re := aesOnly(scenariosOf(r, KindRankEvo))
	if len(fk) == 0 && len(re) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("## Full-key recovery and rank evolution\n\n")
	for _, sr := range fk {
		f := sr.FullKey
		fmt.Fprintf(&sb, "**Full key** (`%s`, %s): **%d/%d** bytes recovered, guessing entropy %.3f bits",
			sr.Ablation, sr.acqDesc(), f.BytesRecovered, len(f.Ranks), f.GuessingEntropy)
		if f.Success {
			fmt.Fprintf(&sb, "; recovered key `%s` matches.\n\n", f.Recovered)
		} else {
			fmt.Fprintf(&sb, "; per-byte ranks %v.\n\n", f.Ranks)
		}
	}
	for _, sr := range re {
		e := sr.RankEvo
		fmt.Fprintf(&sb, "**Rank evolution** (key byte %d, `%s`, %s):\n\n", e.KeyByte, sr.Ablation, sr.acqDesc())
		sb.WriteString("| traces |")
		for _, c := range e.Counts {
			fmt.Fprintf(&sb, " %d |", c)
		}
		sb.WriteString("\n|---|")
		sb.WriteString(strings.Repeat("---|", len(e.Counts)))
		sb.WriteString("\n| rank |")
		for _, rk := range e.Ranks {
			fmt.Fprintf(&sb, " %d |", rk)
		}
		if e.FirstSuccess >= 0 {
			fmt.Fprintf(&sb, "\n\nStable key recovery from **%d** traces on.\n\n", e.FirstSuccess)
		} else {
			sb.WriteString("\n\nThe key was not recovered at any checkpointed count.\n\n")
		}
	}
	return sb.String()
}

// renderTargets renders the multi-cipher attack scenarios — those whose
// target axis names a non-AES cipher — grouped per cipher. Empty (and
// therefore absent from every pre-registry report) when the campaign
// attacks only the AES default.
func renderTargets(r *Results) string {
	var names []string
	byTgt := map[string][]*ScenarioResult{}
	for i := range r.Scenarios {
		sr := &r.Scenarios[i]
		if sr.Target == "" {
			continue
		}
		if _, ok := byTgt[sr.Target]; !ok {
			names = append(names, sr.Target)
		}
		byTgt[sr.Target] = append(byTgt[sr.Target], sr)
	}
	if len(names) == 0 {
		return ""
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString("## Multi-cipher attacks — target registry sweep\n\n")
	sb.WriteString("CPA against the non-AES registry targets: each cipher runs as its own\n")
	sb.WriteString("code-generated program on the simulated pipeline and is attacked with\n")
	sb.WriteString("its own first-round leakage model (DESIGN.md §15).\n\n")
	for _, name := range names {
		if tgt, err := target.Get(name); err == nil {
			info := tgt.Info()
			fmt.Fprintf(&sb, "**Target `%s`** — %s (%d-byte block, %d-byte key, %d attacked bytes)\n\n",
				name, info.Desc, info.BlockSize, info.KeySize, info.AttackBytes)
		} else {
			fmt.Fprintf(&sb, "**Target `%s`**\n\n", name)
		}
		sb.WriteString("| scenario | acquisition | outcome |\n|---|---|---|\n")
		for _, sr := range byTgt[name] {
			fmt.Fprintf(&sb, "| `%s` | %s | %s |\n", sr.ID, sr.acqDesc(), sr.headline())
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// renderCountermeasures renders the maskcpa scenarios as the
// countermeasure-evaluation tables: per gadget schedule, one row per
// (countermeasure, order, acquisition) point with the attack outcome.
func renderCountermeasures(r *Results) string {
	ss := scenariosOf(r, KindMaskCPA)
	if len(ss) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("## Countermeasure evaluation — masked gadgets under CPA (§4.2)\n\n")
	sb.WriteString("Keyed CPA against two-share masked gadgets: first-order attacks must\n")
	sb.WriteString("fail on leakage-free schedules and succeed when the instruction\n")
	sb.WriteString("schedule recombines shares in a shared micro-architectural buffer;\n")
	sb.WriteString("second-order (centered-product) attacks defeat plain masking\n")
	sb.WriteString("regardless of schedule.\n\n")
	// Group by gadget, preserving enumeration order of first appearance.
	var gadgets []string
	byGadget := map[string][]*ScenarioResult{}
	for _, sr := range ss {
		g := sr.MaskCPA.Gadget
		if _, ok := byGadget[g]; !ok {
			gadgets = append(gadgets, g)
		}
		byGadget[g] = append(byGadget[g], sr)
	}
	for _, g := range gadgets {
		fmt.Fprintf(&sb, "**Gadget `%s`**\n\n", g)
		sb.WriteString("| countermeasures | order | ablation | acquisition | outcome | best r | true-key r | confidence |\n")
		sb.WriteString("|---|---|---|---|---|---|---|---|\n")
		for _, sr := range byGadget[g] {
			m := sr.MaskCPA
			outcome := fmt.Sprintf("key recovered (%s)", m.Recovered)
			if !m.Success {
				outcome = fmt.Sprintf("key NOT recovered (rank %d)", m.Rank)
			}
			fmt.Fprintf(&sb, "| `%s` | %d | `%s` | %s | %s | %+.3f | %+.3f | %.4f |\n",
				m.Ctr, m.Order, sr.Ablation, sr.acqDesc(), outcome, m.BestCorr, m.TrueCorr, m.Confidence)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// renderTVLA renders the fixed-vs-random t-test workloads.
func renderTVLA(r *Results) string {
	ss := scenariosOf(r, KindTVLA)
	if len(ss) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("## TVLA — fixed-vs-random t-test\n\n")
	sb.WriteString("Non-specific Welch t-test over the Table 2 benchmark rows; detection\n")
	sb.WriteString("at the conventional |t| > 4.5 threshold.\n\n")
	for _, sr := range ss {
		t := sr.TVLA
		fmt.Fprintf(&sb, "**Ablation `%s`** — %s: %d/%d rows detected.\n\n",
			sr.Ablation, sr.acqDesc(), t.Detected, len(t.Rows))
		sb.WriteString("| # | benchmark | max \\|t\\| | at sample | detected |\n|---|---|---|---|---|\n")
		for _, rw := range t.Rows {
			det := "✗"
			if rw.Detected {
				det = "✓"
			}
			fmt.Fprintf(&sb, "| %d | `%s` | %.2f | %d | %s |\n", rw.Row, rw.Name, rw.MaxT, rw.Sample, det)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func renderAblations(r *Results) string {
	var ss []*ScenarioResult
	for i := range r.Scenarios {
		if r.Scenarios[i].Ablation != PaperAblation {
			ss = append(ss, &r.Scenarios[i])
		}
	}
	if len(ss) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("## Ablation sweep\n\n")
	sb.WriteString("Scenarios run under modified micro-architectures (DESIGN.md §5/§8):\n\n")
	sb.WriteString("| scenario | headline |\n|---|---|\n")
	for _, sr := range ss {
		fmt.Fprintf(&sb, "| `%s` | %s |\n", sr.ID, sr.Headline())
	}
	sb.WriteString("\n")
	return sb.String()
}

// Doc markers: a generated region of a documentation file is delimited
// by beginMarker(name) and endMarker(name) lines; UpdateDoc replaces
// everything between them with the freshly rendered section.
const (
	markerBegin = "<!-- campaign:begin "
	markerEnd   = "<!-- campaign:end "
	markerClose = " -->"
)

// UpdateDoc replaces every marked region of doc with the corresponding
// rendered section of r and returns the new document. Markers look like
//
//	<!-- campaign:begin table2 -->
//	…generated content…
//	<!-- campaign:end table2 -->
//
// Unknown section names, unterminated regions and mismatched end markers
// are errors. Applying UpdateDoc twice with the same results is a no-op,
// which is what lets CI fail on documentation drift.
func UpdateDoc(doc string, r *Results) (string, error) {
	return UpdateDocSections(doc, r, nil)
}

// UpdateDocSections is UpdateDoc restricted to a section allow-list:
// marked regions whose name is not in only are left byte-for-byte
// verbatim (still validated for well-formed markers), so one document
// can interleave regions owned by different campaigns — each regenerated
// from its own results file without clobbering the others. A nil list
// selects every region.
func UpdateDocSections(doc string, r *Results, only []string) (string, error) {
	selected := func(name string) bool {
		if only == nil {
			return true
		}
		for _, n := range only {
			if n == name {
				return true
			}
		}
		return false
	}
	lines := strings.Split(doc, "\n")
	var out []string
	for i := 0; i < len(lines); i++ {
		line := lines[i]
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, markerBegin) || !strings.HasSuffix(trimmed, markerClose) {
			if strings.HasPrefix(trimmed, markerEnd) {
				return "", fmt.Errorf("campaign: stray end marker %q", trimmed)
			}
			out = append(out, line)
			continue
		}
		name := strings.TrimSuffix(strings.TrimPrefix(trimmed, markerBegin), markerClose)
		end := -1
		for j := i + 1; j < len(lines); j++ {
			t := strings.TrimSpace(lines[j])
			if t == markerEnd+name+markerClose {
				end = j
				break
			}
			if strings.HasPrefix(t, markerBegin) || strings.HasPrefix(t, markerEnd) {
				return "", fmt.Errorf("campaign: marker %q inside open region %q", t, name)
			}
		}
		if end < 0 {
			return "", fmt.Errorf("campaign: unterminated region %q", name)
		}
		if !selected(name) {
			out = append(out, lines[i:end+1]...)
			i = end
			continue
		}
		section, err := RenderSection(r, name)
		if err != nil {
			return "", err
		}
		out = append(out, line)
		if section != "" {
			out = append(out, "", strings.TrimRight(section, "\n"), "")
		}
		out = append(out, lines[end])
		i = end
	}
	return strings.Join(out, "\n"), nil
}
