package campaign

import (
	"fmt"
	"slices"
	"strings"

	"repro/internal/aes"
	"repro/internal/attack"
	"repro/internal/engine"
	"repro/internal/target"
)

// ScenarioRequest is the wire form of one fully resolved scenario — the
// body of the scad worker's POST /v1/scenario endpoint and the unit the
// cluster coordinator dispatches. It carries exactly the
// result-affecting axes of a Scenario plus the campaign identity the
// scenario's private seed derives from; scheduling (workers, lanes,
// which worker executes it) never appears, so its canonical digest is a
// sound content-address for the response bytes.
//
// The request is self-validating: Resolve recomputes the canonical
// scenario ID from the axes and refuses a request whose spelled ID
// disagrees, so a corrupted or hand-edited request cannot silently
// execute under the wrong seed.
type ScenarioRequest struct {
	// Campaign and CampaignSeed identify the campaign the scenario
	// belongs to; the scenario's private seed is DeriveSeed(CampaignSeed,
	// ID), recomputed on the worker rather than trusted from the wire.
	Campaign     string `json:"campaign"`
	CampaignSeed int64  `json:"campaign_seed"`
	// Key is the AES-128 key of the attack kinds as 32 hex digits
	// (empty: attack.DefaultKey), normalized to lower case.
	Key string `json:"key,omitempty"`
	// ID is the canonical scenario identifier (see scenarioID).
	ID string `json:"id"`
	// Kind and Ablation name the workload family and the canonical
	// micro-architectural variant.
	Kind     Kind   `json:"kind"`
	Ablation string `json:"ablation"`
	// The remaining fields mirror Scenario's resolved axes; zero values
	// mean "workload default" exactly as there. NoiseSigma uses the
	// SigmaDefault sentinel (-1) for "model default", so it is never
	// omitted.
	Traces     int     `json:"traces,omitempty"`
	Averages   int     `json:"averages,omitempty"`
	NoiseSigma float64 `json:"noise_sigma"`
	Synth      string  `json:"synth"`
	// Target is the attacked cipher in canonical spelling: absent for
	// the AES default (never "aes" — Resolve refuses the non-canonical
	// form so one scenario cannot exist under two digests), the registry
	// name otherwise.
	Target     string  `json:"target,omitempty"`
	KeyByte    int     `json:"key_byte,omitempty"`
	Rounds     int     `json:"rounds,omitempty"`
	Reps       int     `json:"reps,omitempty"`
	Rows       []int   `json:"rows,omitempty"`
	Counts     []int   `json:"counts,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
	Gadget     string  `json:"gadget,omitempty"`
	Ctr        string  `json:"ctr,omitempty"`
	Order      int     `json:"order,omitempty"`
}

// WireRequest renders the scenario in its wire form for a campaign with
// the given identity. The result is canonical by construction: the
// scenario came out of Enumerate, whose axes are already sorted and
// canonically spelled.
func (sc *Scenario) WireRequest(campaignName string, campaignSeed int64, key string) ScenarioRequest {
	return ScenarioRequest{
		Campaign:     campaignName,
		CampaignSeed: campaignSeed,
		Key:          strings.ToLower(key),
		ID:           sc.ID,
		Kind:         sc.Kind,
		Ablation:     sc.Ablation.Name,
		Traces:       sc.Traces,
		Averages:     sc.Averages,
		NoiseSigma:   sc.NoiseSigma,
		Synth:        sc.Synth.String(),
		Target:       sc.Target,
		KeyByte:      sc.KeyByte,
		Rounds:       sc.Rounds,
		Reps:         sc.Reps,
		Rows:         append([]int(nil), sc.Rows...),
		Counts:       append([]int(nil), sc.Counts...),
		Confidence:   sc.Confidence,
		Gadget:       sc.Gadget,
		Ctr:          sc.Ctr,
		Order:        sc.Order,
	}
}

// Resolve validates the request and reconstructs the executable
// Scenario plus the attack key. The canonical scenario ID is recomputed
// from the axes and must equal the spelled one, and the private seed is
// rederived from (CampaignSeed, ID) — the wire carries no seed to
// trust.
func (r *ScenarioRequest) Resolve() (*Scenario, [aes.KeySize]byte, error) {
	var key [aes.KeySize]byte
	if r.Campaign == "" {
		return nil, key, fmt.Errorf("campaign: scenario request needs a campaign name")
	}
	if r.ID == "" {
		return nil, key, fmt.Errorf("campaign: scenario request needs an id")
	}
	if !validKind(r.Kind) {
		return nil, key, fmt.Errorf("campaign: scenario request: unknown kind %q", r.Kind)
	}
	key, err := attack.ParseKey(strings.ToLower(r.Key))
	if err != nil {
		return nil, key, err
	}
	ab, err := ParseAblation(r.Ablation)
	if err != nil {
		return nil, key, err
	}
	if ab.Name != r.Ablation && !(r.Ablation == "" && ab.Name == PaperAblation) {
		return nil, key, fmt.Errorf("campaign: scenario request: ablation %q is not canonical (want %q)", r.Ablation, ab.Name)
	}
	mode, err := parseSynth(r.Synth)
	if err != nil {
		return nil, key, err
	}
	if !slices.IsSorted(r.Rows) || !slices.IsSorted(r.Counts) {
		return nil, key, fmt.Errorf("campaign: scenario request: rows and counts must be sorted")
	}
	if r.Target != "" {
		if canon := target.Canon(target.Resolve(r.Target)); canon != r.Target {
			return nil, key, fmt.Errorf("campaign: scenario request: target %q is not canonical (want %q)", r.Target, canon)
		}
		if _, err := target.Get(r.Target); err != nil {
			return nil, key, err
		}
	}
	// Recompute the canonical ID from the axes; a mismatch means the
	// request was corrupted in flight or assembled against a different
	// ID-spelling convention, and executing it would derive the wrong
	// seed.
	w := Workload{
		Kind:       r.Kind,
		Averages:   r.Averages,
		KeyByte:    r.KeyByte,
		Rounds:     r.Rounds,
		Reps:       r.Reps,
		Rows:       r.Rows,
		Counts:     r.Counts,
		Confidence: r.Confidence,
	}
	id := scenarioID(r.Kind, ab.Name, &w, r.Traces, r.NoiseSigma, mode, maskPoint{gadget: r.Gadget, ctr: r.Ctr, order: r.Order}, r.Target)
	if id != r.ID {
		return nil, key, fmt.Errorf("campaign: scenario request id %q does not match its axes (canonical %q)", r.ID, id)
	}
	sc := &Scenario{
		ID:         r.ID,
		Kind:       r.Kind,
		Ablation:   ab,
		Traces:     r.Traces,
		Averages:   r.Averages,
		NoiseSigma: r.NoiseSigma,
		Synth:      mode,
		Target:     r.Target,
		KeyByte:    r.KeyByte,
		Rounds:     r.Rounds,
		Reps:       r.Reps,
		Rows:       append([]int(nil), r.Rows...),
		Counts:     append([]int(nil), r.Counts...),
		Confidence: r.Confidence,
		Gadget:     r.Gadget,
		Ctr:        r.Ctr,
		Order:      r.Order,
		Seed:       engine.DeriveSeed(r.CampaignSeed, r.ID),
	}
	return sc, key, nil
}

// Fingerprint is the content address of the request's response bytes:
// the canonical digest of (endpoint, request). It is the key the worker
// caches the scenario result under and the one the coordinator uses for
// read-through and peer cache fill — computed identically on both
// sides.
func (r *ScenarioRequest) Fingerprint() string {
	return CanonicalDigest(struct {
		Endpoint string           `json:"endpoint"`
		Request  *ScenarioRequest `json:"request"`
	}{Endpoint: "scenario", Request: r})
}

// MergeResults assembles independently executed scenario results into
// the canonical Results artifact: scenarios in enumeration order, each
// present exactly once. Completion order, which worker ran what, and
// retry history are all invisible to the output — merged reports are
// byte-identical to a single-process Run of the same spec.
func MergeResults(spec *Spec, scenarios []Scenario, byID map[string]*ScenarioResult) (*Results, error) {
	out := &Results{Campaign: spec.Name, Seed: spec.Seed, SpecFingerprint: spec.Fingerprint()}
	for i := range scenarios {
		sr, ok := byID[scenarios[i].ID]
		if !ok || sr == nil {
			return nil, fmt.Errorf("campaign: merge: scenario %q has no result", scenarios[i].ID)
		}
		out.Scenarios = append(out.Scenarios, *sr)
	}
	if len(byID) > len(scenarios) {
		for id := range byID {
			found := false
			for i := range scenarios {
				if scenarios[i].ID == id {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("campaign: merge: result for %q matches no enumerated scenario", id)
			}
		}
	}
	return out, nil
}
