package campaign

import (
	"context"
	"encoding/hex"
	"fmt"

	"repro/internal/aes"
	"repro/internal/attack"
	"repro/internal/cpi"
	"repro/internal/engine"
	"repro/internal/leakscan"
	"repro/internal/masking"
	"repro/internal/target"
)

// Execute runs one scenario to completion and returns its structured
// result. It is a pure function of (scenario, key): the scenario's
// private seed drives all randomness through per-trace streams, so two
// executions — on any shard, at any worker count, at any replay lane
// width — produce identical results.
func Execute(sc *Scenario, key [aes.KeySize]byte, workers, lanes int) (*ScenarioResult, error) {
	return ExecuteContext(context.Background(), sc, key, workers, lanes, nil)
}

// ExecuteContext is Execute with cancellation and an optional shared
// synthesis gate — the runner-as-library entry point a long-lived
// service drives concurrent scenarios through. Cancellation aborts the
// scenario between engine chunks; it never produces a partial result.
func ExecuteContext(ctx context.Context, sc *Scenario, key [aes.KeySize]byte, workers, lanes int, gate *engine.Gate) (*ScenarioResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := &ScenarioResult{
		ID:       sc.ID,
		Kind:     sc.Kind,
		Ablation: sc.Ablation.Name,
		Target:   sc.Target,
		Seed:     sc.Seed,
	}
	ex := execEnv{ctx: ctx, workers: workers, lanes: lanes, gate: gate}
	var err error
	switch sc.Kind {
	case KindTable1:
		err = execTable1(sc, out)
	case KindFigure2:
		err = execFigure2(sc, out)
	case KindTable2:
		err = execTable2(sc, out, ex)
	case KindFig3:
		err = execFig3(sc, out, key, ex)
	case KindFig4:
		err = execFig4(sc, out, key, ex)
	case KindFullKey:
		err = execFullKey(sc, out, key, ex)
	case KindRankEvo:
		err = execRankEvo(sc, out, key, ex)
	case KindMaskCPA:
		err = execMaskCPA(sc, out, key, ex)
	case KindTVLA:
		err = execTVLA(sc, out, ex)
	default:
		err = fmt.Errorf("campaign: unknown kind %q", sc.Kind)
	}
	if err == nil {
		// The cycle-count kinds never observe ctx; honor cancellation
		// uniformly so a canceled campaign cannot half-commit.
		err = ctx.Err()
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: scenario %s: %w", sc.ID, err)
	}
	return out, nil
}

// execEnv carries the scheduling knobs of one scenario execution —
// never result-affecting.
type execEnv struct {
	ctx     context.Context
	workers int
	lanes   int
	gate    *engine.Gate
}

// sigma resolves the scenario's noise override against the model
// default carried by the ablation.
func (sc *Scenario) sigma() float64 {
	if sc.NoiseSigma == SigmaDefault {
		return sc.Ablation.Model.NoiseSigma
	}
	return sc.NoiseSigma
}

func (sc *Scenario) reps() int {
	if sc.Reps > 0 {
		return sc.Reps
	}
	return cpi.DefaultReps
}

func execTable1(sc *Scenario, out *ScenarioResult) error {
	m, err := cpi.MeasureMatrix(sc.Ablation.Core, sc.reps())
	if err != nil {
		return err
	}
	res := &Table1Result{Reps: sc.reps()}
	for _, cell := range m.Ordered() {
		res.Cells = append(res.Cells, Table1Cell{
			Older:     cell.Older.String(),
			Younger:   cell.Younger.String(),
			CPI:       cell.CPI,
			HazardCPI: cell.HazardCPI,
			Dual:      cell.Dual,
			Paper:     cpi.PaperTable1(cell.Older, cell.Younger),
		})
	}
	res.Match, res.Total = m.Agreement()
	out.Table1 = res
	return nil
}

func execFigure2(sc *Scenario, out *ScenarioResult) error {
	m, err := cpi.MeasureMatrix(sc.Ablation.Core, sc.reps())
	if err != nil {
		return err
	}
	p, err := cpi.MeasureProbes(sc.Ablation.Core, sc.reps())
	if err != nil {
		return err
	}
	inf := cpi.Infer(m, p)
	ok, why := inf.MatchesPaper()
	out.Figure2 = &Figure2Result{
		DualIssue:       inf.DualIssue,
		FetchWidth:      inf.FetchWidth,
		NumALUs:         inf.NumALUs,
		ALUsSymmetric:   inf.ALUsSymmetric,
		ReadPorts:       inf.ReadPorts,
		WritePorts:      inf.WritePorts,
		LSUPipelined:    inf.LSUPipelined,
		MulPipelined:    inf.MulPipelined,
		AGUInIssueStage: inf.AGUInIssueStage,
		NopsDualIssued:  inf.NopsDualIssued,
		MatchesPaper:    ok,
		Disagreement:    why,
	}
	return nil
}

func execTable2(sc *Scenario, out *ScenarioResult, ex execEnv) error {
	opt := leakscan.DefaultOptions()
	opt.Core = sc.Ablation.Core
	opt.Model = sc.Ablation.Model
	opt.Model.NoiseSigma = sc.sigma()
	opt.Seed = sc.Seed
	opt.Workers = ex.workers
	opt.Lanes = ex.lanes
	opt.Ctx = ex.ctx
	opt.Gate = ex.gate
	opt.Synth = sc.Synth
	if sc.Traces > 0 {
		opt.Traces = sc.Traces
	}
	if sc.Averages > 0 {
		opt.Averages = sc.Averages
	}
	if sc.Confidence > 0 {
		opt.Confidence = sc.Confidence
	}
	rows := sc.Rows
	if len(rows) == 0 {
		rows = []int{1, 2, 3, 4, 5, 6, 7}
	}
	res := &Table2Result{Traces: opt.Traces, Averages: opt.Averages}
	for _, row := range rows {
		b, ok := leakscan.BenchmarkByRow(row)
		if !ok {
			return fmt.Errorf("no Table 2 row %d", row)
		}
		br, err := leakscan.RunBenchmark(&b, opt)
		if err != nil {
			return err
		}
		rr := Table2Row{Row: br.Row, Name: br.Name, Dual: br.Dual, DualExpected: br.DualExpected}
		for _, e := range br.Exprs {
			rr.Cells = append(rr.Cells, Table2Cell{
				Column:     string(e.Column),
				Expr:       e.Name,
				Scored:     e.Scored,
				Expected:   e.Expected.Leaks(),
				Border:     e.Expected == leakscan.Border,
				Detected:   e.Detected,
				Match:      e.Match,
				Peak:       e.Peak,
				Confidence: e.Confidence,
			})
		}
		res.Rows = append(res.Rows, rr)
		m, t := br.Agreement()
		res.Match += m
		res.Total += t
	}
	out.Table2 = res
	out.Traces, out.Averages, out.NoiseSigma, out.Synth = opt.Traces, opt.Averages, opt.Model.NoiseSigma, sc.Synth.String()
	return nil
}

// fig3Options assembles the attack options shared by the fig3-model
// kinds (fig3, fullkey, rankevo).
func (sc *Scenario) fig3Options(ex execEnv) attack.Fig3Options {
	opt := attack.DefaultFig3Options()
	opt.Core = sc.Ablation.Core
	opt.Model = sc.Ablation.Model
	opt.Model.NoiseSigma = sc.sigma()
	opt.Seed = sc.Seed
	opt.Workers = ex.workers
	opt.Lanes = ex.lanes
	opt.Ctx = ex.ctx
	opt.Gate = ex.gate
	opt.Synth = sc.Synth
	if sc.Traces > 0 {
		opt.Traces = sc.Traces
	}
	if sc.Averages > 0 {
		opt.Averages = sc.Averages
	}
	if sc.KeyByte > 0 {
		opt.KeyByte = sc.KeyByte
	}
	if sc.Rounds > 0 {
		opt.Rounds = sc.Rounds
	}
	return opt
}

// attackCipher resolves the fig3-family scenario's cipher target: the
// campaign key for the AES default, the registry default key otherwise
// (Spec.Key is AES-only by contract). For a non-AES target it also
// substitutes the cipher's own default round count when the scenario
// does not pin one, since opt's default is the AES depth.
func (sc *Scenario) attackCipher(key [aes.KeySize]byte, opt *attack.Fig3Options) (string, []byte, error) {
	name := target.Resolve(sc.Target)
	if name == target.Default {
		return name, key[:], nil
	}
	tgt, err := target.Get(name)
	if err != nil {
		return "", nil, err
	}
	info := tgt.Info()
	if sc.Rounds == 0 {
		opt.Rounds = info.DefaultRounds
	}
	return name, info.DefaultKey, nil
}

func execFig3(sc *Scenario, out *ScenarioResult, key [aes.KeySize]byte, ex execEnv) error {
	opt := sc.fig3Options(ex)
	name, tkey, err := sc.attackCipher(key, &opt)
	if err != nil {
		return err
	}
	res, err := attack.RunCPA(name, tkey, opt)
	if err != nil {
		return err
	}
	ar := &AttackResult{
		KeyByte:        res.KeyByte,
		TrueKey:        fmt.Sprintf("%#02x", res.TrueKey),
		Recovered:      fmt.Sprintf("%#02x", res.Recovered),
		Rank:           res.Rank,
		Success:        res.Success(),
		Confidence:     res.Confidence,
		Traces:         res.Traces,
		Averages:       opt.Averages,
		Replayed:       res.Replayed,
		FallbackReason: res.FallbackReason,
	}
	for _, reg := range res.Regions {
		ar.Regions = append(ar.Regions, Region{
			Name: reg.Name, Round: reg.Round,
			StartUs: reg.StartUs, EndUs: reg.EndUs,
			PeakCorr: reg.PeakCorr, PeakUs: reg.PeakSampleUs,
		})
	}
	out.Fig3 = ar
	out.Traces, out.Averages, out.NoiseSigma, out.Synth = opt.Traces, opt.Averages, opt.Model.NoiseSigma, sc.Synth.String()
	return nil
}

func execFig4(sc *Scenario, out *ScenarioResult, key [aes.KeySize]byte, ex execEnv) error {
	opt := attack.DefaultFig4Options()
	opt.Core = sc.Ablation.Core
	opt.Model = sc.Ablation.Model
	opt.Model.NoiseSigma = sc.sigma()
	opt.Seed = sc.Seed
	opt.Workers = ex.workers
	opt.Lanes = ex.lanes
	opt.Ctx = ex.ctx
	opt.Gate = ex.gate
	opt.Synth = sc.Synth
	if sc.Traces > 0 {
		opt.Traces = sc.Traces
	}
	if sc.Averages > 0 {
		opt.Averages = sc.Averages
	}
	if sc.KeyByte > 0 {
		opt.KeyByte = sc.KeyByte
	}
	if sc.Rounds > 0 {
		opt.Rounds = sc.Rounds
	}
	res, err := attack.RunFigure4(key, opt)
	if err != nil {
		return err
	}
	out.Fig4 = &AttackResult{
		KeyByte:        res.KeyByte,
		TrueKey:        fmt.Sprintf("%#02x", res.TrueKey),
		Recovered:      fmt.Sprintf("%#02x", res.Recovered),
		Rank:           res.Rank,
		Success:        res.Success(),
		BestCorr:       res.BestCorr,
		SecondCorr:     res.SecondCorr,
		Confidence:     res.Confidence,
		Traces:         res.Traces,
		Averages:       opt.Averages,
		Replayed:       res.Replayed,
		FallbackReason: res.FallbackReason,
	}
	out.Traces, out.Averages, out.NoiseSigma, out.Synth = opt.Traces, opt.Averages, opt.Model.NoiseSigma, sc.Synth.String()
	return nil
}

func execFullKey(sc *Scenario, out *ScenarioResult, key [aes.KeySize]byte, ex execEnv) error {
	opt := sc.fig3Options(ex)
	name, tkey, err := sc.attackCipher(key, &opt)
	if err != nil {
		return err
	}
	res, err := attack.RecoverKey(name, tkey, opt)
	if err != nil {
		return err
	}
	out.FullKey = &FullKeyResult{
		Traces:          res.Traces,
		Key:             hex.EncodeToString(res.Key),
		Recovered:       hex.EncodeToString(res.Recovered),
		BytesRecovered:  res.BytesRecovered(),
		Ranks:           append([]int(nil), res.Ranks...),
		GuessingEntropy: res.GuessingEntropy(),
		Success:         res.Success(),
	}
	out.Traces, out.Averages, out.NoiseSigma, out.Synth = opt.Traces, opt.Averages, opt.Model.NoiseSigma, sc.Synth.String()
	return nil
}

func execRankEvo(sc *Scenario, out *ScenarioResult, key [aes.KeySize]byte, ex execEnv) error {
	opt := sc.fig3Options(ex)
	name, tkey, err := sc.attackCipher(key, &opt)
	if err != nil {
		return err
	}
	curve, err := attack.RankEvolutionFor(name, tkey, opt, sc.Counts)
	if err != nil {
		return err
	}
	res := &RankEvoResult{
		KeyByte:      opt.KeyByte,
		Counts:       append([]int(nil), curve.TraceCounts...),
		Ranks:        append([]int(nil), curve.Ranks...),
		FirstSuccess: curve.FirstSuccess(),
	}
	out.RankEvo = res
	max := sc.Counts[len(sc.Counts)-1]
	out.Traces, out.Averages, out.NoiseSigma, out.Synth = max, opt.Averages, opt.Model.NoiseSigma, sc.Synth.String()
	return nil
}

func execMaskCPA(sc *Scenario, out *ScenarioResult, key [aes.KeySize]byte, ex execEnv) error {
	ctr, err := masking.ParseCountermeasure(sc.Ctr)
	if err != nil {
		return err
	}
	opt := masking.DefaultKeyedOptions()
	opt.Schedule = sc.Gadget
	opt.Ctr = ctr
	opt.Order = sc.Order
	opt.Key = key[sc.KeyByte]
	opt.Core = sc.Ablation.Core
	opt.Model = sc.Ablation.Model
	opt.Model.NoiseSigma = sc.sigma()
	opt.Seed = sc.Seed
	opt.Workers = ex.workers
	opt.Ctx = ex.ctx
	opt.Gate = ex.gate
	if sc.Traces > 0 {
		opt.Traces = sc.Traces
	}
	if sc.Averages > 0 {
		opt.Averages = sc.Averages
	}
	res, err := masking.EvaluateKeyedCPA(opt)
	if err != nil {
		return err
	}
	out.MaskCPA = &MaskCPAResult{
		Gadget:     res.Schedule,
		Ctr:        res.Ctr,
		Order:      res.Order,
		TrueKey:    fmt.Sprintf("%#02x", res.Key),
		Recovered:  fmt.Sprintf("%#02x", res.Recovered),
		Rank:       res.Rank,
		Success:    res.Success,
		BestCorr:   res.BestCorr,
		TrueCorr:   res.TrueCorr,
		Confidence: res.Confidence,
		Traces:     res.Traces,
		Samples:    res.Samples,
		Pairs:      res.Pairs,
	}
	out.Traces, out.Averages, out.NoiseSigma, out.Synth = opt.Traces, opt.Averages, opt.Model.NoiseSigma, sc.Synth.String()
	return nil
}

func execTVLA(sc *Scenario, out *ScenarioResult, ex execEnv) error {
	opt := leakscan.DefaultOptions()
	opt.Core = sc.Ablation.Core
	opt.Model = sc.Ablation.Model
	opt.Model.NoiseSigma = sc.sigma()
	opt.Seed = sc.Seed
	opt.Workers = ex.workers
	opt.Lanes = ex.lanes
	opt.Ctx = ex.ctx
	opt.Gate = ex.gate
	opt.Synth = sc.Synth
	if sc.Traces > 0 {
		opt.Traces = sc.Traces
	}
	if sc.Averages > 0 {
		opt.Averages = sc.Averages
	}
	rows := sc.Rows
	if len(rows) == 0 {
		rows = []int{1, 2, 3, 4, 5, 6, 7}
	}
	res := &TVLAResult{Traces: opt.Traces, Averages: opt.Averages}
	for _, row := range rows {
		b, ok := leakscan.BenchmarkByRow(row)
		if !ok {
			return fmt.Errorf("no Table 2 row %d", row)
		}
		tr, err := leakscan.RunTVLA(&b, opt)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, TVLARow{
			Row: b.Row, Name: b.Name,
			MaxT: tr.MaxT, Sample: tr.Sample,
			Detected:       tr.Detected,
			TracesPerGroup: tr.TracesPerGroup,
		})
		if tr.Detected {
			res.Detected++
		}
	}
	out.TVLA = res
	out.Traces, out.Averages, out.NoiseSigma, out.Synth = opt.Traces, opt.Averages, opt.Model.NoiseSigma, sc.Synth.String()
	return nil
}

// Headline summarizes a result in one line — the headline metric of its
// kind — shared by progress logs, the summary report table and
// cmd/campaign's recap. Non-AES attack targets are named; the AES
// default keeps its pre-registry spelling.
func (sr *ScenarioResult) Headline() string {
	if sr.Target != "" {
		return sr.Target + " " + sr.headline()
	}
	return sr.headline()
}

func (sr *ScenarioResult) headline() string {
	switch {
	case sr.Table1 != nil:
		return fmt.Sprintf("Table 1 agreement %d/%d", sr.Table1.Match, sr.Table1.Total)
	case sr.Figure2 != nil:
		return fmt.Sprintf("Figure 2 matches paper: %v", sr.Figure2.MatchesPaper)
	case sr.Table2 != nil:
		return fmt.Sprintf("Table 2 agreement %d/%d", sr.Table2.Match, sr.Table2.Total)
	case sr.Fig3 != nil:
		return fmt.Sprintf("Fig 3 key byte %d rank %d (conf %.4f)", sr.Fig3.KeyByte, sr.Fig3.Rank, sr.Fig3.Confidence)
	case sr.Fig4 != nil:
		return fmt.Sprintf("Fig 4 key byte %d rank %d (conf %.4f)", sr.Fig4.KeyByte, sr.Fig4.Rank, sr.Fig4.Confidence)
	case sr.FullKey != nil:
		return fmt.Sprintf("full key %d/%d bytes", sr.FullKey.BytesRecovered, len(sr.FullKey.Ranks))
	case sr.RankEvo != nil:
		if sr.RankEvo.FirstSuccess < 0 {
			return "rank evolution: key never recovered"
		}
		return fmt.Sprintf("rank evolution first success @ %d traces", sr.RankEvo.FirstSuccess)
	case sr.MaskCPA != nil:
		m := sr.MaskCPA
		outcome := "key NOT recovered"
		if m.Success {
			outcome = "key recovered"
		}
		return fmt.Sprintf("%s/%s order-%d CPA: %s (rank %d, r=%+.3f)",
			m.Gadget, m.Ctr, m.Order, outcome, m.Rank, m.BestCorr)
	case sr.TVLA != nil:
		return fmt.Sprintf("TVLA: %d/%d rows above |t|=%g", sr.TVLA.Detected, len(sr.TVLA.Rows), leakscan.TVLAThreshold)
	}
	return "done"
}
