package campaign

import (
	"fmt"
	"strings"

	"repro/internal/pipeline"
	"repro/internal/power"
)

// Toggle is one named micro-architectural feature flip relative to the
// paper's Cortex-A7 model. Toggles compose: an ablation name joins any
// subset with "+" ("scalar+no-align-buffer").
type Toggle struct {
	// Name is the spec spelling.
	Name string
	// Desc states what the toggle removes or replaces.
	Desc string
	// Apply mutates the default core configuration and power model.
	Apply func(*pipeline.Config, *power.Model)
}

// Toggles returns the six canonical feature toggles, in the fixed order
// that defines the all64 enumeration (DESIGN.md §5 ablations 1–3 and 6
// plus the lane-replication and pairing-alignment flips). The order is
// part of the campaign determinism contract: all64 combination k flips
// exactly the toggles of k's set bits.
func Toggles() []Toggle {
	return []Toggle{
		{
			Name:  "scalar",
			Desc:  "second issue slot removed (single-issue core)",
			Apply: func(c *pipeline.Config, _ *power.Model) { c.DualIssue = false },
		},
		{
			Name:  "structural-policy",
			Desc:  "measured Table 1 pairing policy replaced by structural checks only",
			Apply: func(c *pipeline.Config, _ *power.Model) { c.StructuralPolicyOnly = true },
		},
		{
			Name:  "unaligned-pairs",
			Desc:  "dual-issue no longer restricted to fetch-aligned pairs",
			Apply: func(c *pipeline.Config, _ *power.Model) { c.AlignedPairs = false },
		},
		{
			Name:  "no-nop-wb-zero",
			Desc:  "nops leave the write-back bus untouched (no † border leaks)",
			Apply: func(c *pipeline.Config, _ *power.Model) { c.NopZeroesWB = false },
		},
		{
			Name:  "no-align-buffer",
			Desc:  "LSU sub-word align buffer absent (Table 2 row 7)",
			Apply: func(c *pipeline.Config, _ *power.Model) { c.AlignBuffer = false },
		},
		{
			Name:  "no-store-lane-replication",
			Desc:  "sub-word stores drive zero-extended data instead of replicated lanes",
			Apply: func(c *pipeline.Config, _ *power.Model) { c.StoreLaneReplication = false },
		},
	}
}

// extraToggles are named variants outside the 2^6 all64 space, usable in
// explicit ablation names.
func extraToggles() []Toggle {
	return []Toggle{
		{
			Name:  "flat-shifter-weight",
			Desc:  "shifter-buffer leakage weighted like the buses instead of one tenth",
			Apply: func(_ *pipeline.Config, m *power.Model) { m.HWWeights[pipeline.ShiftBuf] = 1.0 },
		},
		{
			Name:  "noiseless",
			Desc:  "measurement noise removed from the power model",
			Apply: func(_ *pipeline.Config, m *power.Model) { m.NoiseSigma = 0 },
		},
	}
}

// PaperAblation is the identity ablation: the paper's deduced
// configuration, untouched.
const PaperAblation = "paper"

// AllTogglesName expands, as a spec ablation entry, to every combination
// of the six canonical toggles — the 64-configuration space the replay
// equivalence tests sweep.
const AllTogglesName = "all64"

// Ablation is one resolved micro-architectural variant: a name plus the
// core configuration and power model to run under.
type Ablation struct {
	// Name is the canonical spelling ("paper", or sorted-by-registry
	// toggle names joined with "+").
	Name string
	// Core is the ablated pipeline configuration.
	Core pipeline.Config
	// Model is the ablated power model.
	Model power.Model
}

// ParseAblation resolves an ablation name: "paper", a toggle name, or a
// "+"-joined toggle combination. The returned canonical name orders the
// toggles by registry position, so equivalent spellings collide rather
// than duplicate.
func ParseAblation(name string) (Ablation, error) {
	ab := Ablation{Name: PaperAblation, Core: pipeline.DefaultConfig(), Model: power.DefaultModel()}
	if name == "" || name == PaperAblation {
		return ab, nil
	}
	reg := append(Toggles(), extraToggles()...)
	want := map[string]bool{}
	for _, part := range strings.Split(name, "+") {
		part = strings.TrimSpace(part)
		found := false
		for _, t := range reg {
			if t.Name == part {
				found = true
				break
			}
		}
		if !found {
			return ab, fmt.Errorf("campaign: unknown ablation toggle %q", part)
		}
		if want[part] {
			return ab, fmt.Errorf("campaign: duplicate ablation toggle %q", part)
		}
		want[part] = true
	}
	var names []string
	for _, t := range reg {
		if want[t.Name] {
			t.Apply(&ab.Core, &ab.Model)
			names = append(names, t.Name)
		}
	}
	ab.Name = strings.Join(names, "+")
	return ab, nil
}

// expandAblations resolves a spec's ablation list into concrete
// variants: names parse via ParseAblation, AllTogglesName expands to the
// 64 canonical-toggle combinations in bitmask order, and an empty list
// means just the paper configuration. Duplicate canonical names are an
// error.
func expandAblations(names []string) ([]Ablation, error) {
	if len(names) == 0 {
		names = []string{PaperAblation}
	}
	var out []Ablation
	seen := map[string]bool{}
	add := func(ab Ablation) error {
		if seen[ab.Name] {
			return fmt.Errorf("campaign: ablation %q listed twice", ab.Name)
		}
		seen[ab.Name] = true
		out = append(out, ab)
		return nil
	}
	for _, name := range names {
		if name == AllTogglesName {
			toggles := Toggles()
			for mask := 0; mask < 1<<len(toggles); mask++ {
				ab := Ablation{Name: PaperAblation, Core: pipeline.DefaultConfig(), Model: power.DefaultModel()}
				var parts []string
				for b, t := range toggles {
					if mask&(1<<b) != 0 {
						t.Apply(&ab.Core, &ab.Model)
						parts = append(parts, t.Name)
					}
				}
				if len(parts) > 0 {
					ab.Name = strings.Join(parts, "+")
				}
				if err := add(ab); err != nil {
					return nil, err
				}
			}
			continue
		}
		ab, err := ParseAblation(name)
		if err != nil {
			return nil, err
		}
		if err := add(ab); err != nil {
			return nil, err
		}
	}
	return out, nil
}
