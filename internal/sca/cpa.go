package sca

import (
	"errors"
	"fmt"
	"math"
)

// CPA is an incremental correlation power analysis engine: it accumulates
// traces one at a time and computes, for every key hypothesis and every
// sample point, the Pearson correlation between the hypothesized leakage
// and the measured power. Memory is O(hypotheses × samples); each Add is
// one pass over the trace per hypothesis.
type CPA struct {
	nHyp    int
	samples int
	count   int

	sumH  []float64 // per hypothesis: Σh
	sumHH []float64 // per hypothesis: Σh²
	sumT  []float64 // per sample: Σt
	sumTT []float64 // per sample: Σt²
	sumHT []float64 // [hyp*samples + s]: Σh·t

	// idx is the indexed row path's staging area (see indexed.go),
	// allocated on first use; never part of the accumulator state.
	idx *indexedScratch
}

// NewCPA returns an engine for nHyp key hypotheses over traces of the
// given sample count.
func NewCPA(nHyp, samples int) (*CPA, error) {
	if nHyp < 2 {
		return nil, fmt.Errorf("sca: need at least 2 hypotheses, got %d", nHyp)
	}
	if samples < 1 {
		return nil, fmt.Errorf("sca: need at least 1 sample, got %d", samples)
	}
	return &CPA{
		nHyp:    nHyp,
		samples: samples,
		sumH:    make([]float64, nHyp),
		sumHH:   make([]float64, nHyp),
		sumT:    make([]float64, samples),
		sumTT:   make([]float64, samples),
		sumHT:   make([]float64, nHyp*samples),
	}, nil
}

// MustNewCPA is NewCPA that panics on bad dimensions.
func MustNewCPA(nHyp, samples int) *CPA {
	c, err := NewCPA(nHyp, samples)
	if err != nil {
		panic(err)
	}
	return c
}

// Add accumulates one trace with its per-hypothesis leakage predictions
// (len(hyp) == hypotheses, len(t) == samples). Accumulation order is
// the determinism contract of the whole analysis chain: adding the same
// traces in the same order always produces bit-identical sums, and
// AddBatch and Merge are defined relative to this serial reference.
func (c *CPA) Add(t []float64, hyp []float64) error {
	if len(t) != c.samples {
		return fmt.Errorf("sca: trace has %d samples, want %d", len(t), c.samples)
	}
	if len(hyp) != c.nHyp {
		return fmt.Errorf("sca: %d hypotheses, want %d", len(hyp), c.nHyp)
	}
	sumSqInto(c.sumT, c.sumTT, t)
	for k, h := range hyp {
		c.sumH[k] += h
		c.sumHH[k] += h * h
		axpy(c.sumHT[k*c.samples:(k+1)*c.samples], t, h)
	}
	c.count++
	return nil
}

// AddBatch accumulates a batch of traces with their per-hypothesis
// predictions (hyps[i][k] predicts trace i under hypothesis k). It is
// bit-identical to calling Add(traces[i], hyps[i]) in ascending i —
// every accumulator element still receives its per-trace contributions
// in trace order, floating-point association unchanged — but the loop
// nest is rearranged so the Σh·t accumulation runs cache-blocked, and,
// when the hypothesis vectors draw from a small alphabet (Hamming
// weights and distances do), through the add-only indexed kernel of
// indexed.go. Which kernel runs is pure speed policy; the accumulator
// bits never depend on it. This is the engine's reduction hot path.
func (c *CPA) AddBatch(traces, hyps [][]float64) error {
	if len(traces) != len(hyps) {
		return fmt.Errorf("sca: batch of %d traces with %d hypothesis vectors", len(traces), len(hyps))
	}
	for i := range traces {
		if len(traces[i]) != c.samples {
			return fmt.Errorf("sca: trace %d of batch has %d samples, want %d", i, len(traces[i]), c.samples)
		}
		if len(hyps[i]) != c.nHyp {
			return fmt.Errorf("sca: trace %d of batch has %d hypotheses, want %d", i, len(hyps[i]), c.nHyp)
		}
	}
	for _, t := range traces {
		sumSqInto(c.sumT, c.sumTT, t)
	}
	for _, h := range hyps {
		for k, hv := range h {
			c.sumH[k] += hv
			c.sumHH[k] += hv * hv
		}
	}
	c.addRows(traces, hyps)
	c.count += len(traces)
	return nil
}

// axpyGeneric performs dst[s] += a * x[s] over the common length — the
// portable reference kernel. Element order is preserved exactly; the
// unroll only removes loop and bounds overhead from the accumulation.
// Every per-element operation is a distinct multiply followed by a
// distinct add, the sequence the vector kernel reproduces lane for lane
// (no fused multiply-add anywhere, so results are bit-identical).
func axpyGeneric(dst, x []float64, a float64) {
	n := len(x)
	if len(dst) < n {
		n = len(dst)
	}
	dst = dst[:n]
	x = x[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += a * x[i]
		dst[i+1] += a * x[i+1]
		dst[i+2] += a * x[i+2]
		dst[i+3] += a * x[i+3]
	}
	for ; i < n; i++ {
		dst[i] += a * x[i]
	}
}

// axpy4Generic applies four traces to one accumulator row in a single
// pass: per element, the four scaled contributions are added strictly
// in trace order, so the result is bit-identical to four sequential
// axpy calls — the row is just loaded and stored once instead of four
// times.
func axpy4Generic(dst, x0, x1, x2, x3 []float64, a0, a1, a2, a3 float64) {
	n := len(dst)
	for _, x := range [4][]float64{x0, x1, x2, x3} {
		if len(x) < n {
			n = len(x)
		}
	}
	dst = dst[:n]
	x0, x1, x2, x3 = x0[:n], x1[:n], x2[:n], x3[:n]
	for i := 0; i < n; i++ {
		v := dst[i]
		v += a0 * x0[i]
		v += a1 * x1[i]
		v += a2 * x2[i]
		v += a3 * x3[i]
		dst[i] = v
	}
}

// Count returns the number of accumulated traces.
func (c *CPA) Count() int { return c.count }

// MeanTrace returns the per-sample mean trace Σt/n — the centering
// vector a second-order pass feeds to a centered-product combiner. It
// is a pure function of the accumulator state, so two runs over the
// same trace sequence return bit-identical means.
func (c *CPA) MeanTrace() []float64 {
	out := make([]float64, c.samples)
	if c.count == 0 {
		return out
	}
	n := float64(c.count)
	for s, v := range c.sumT {
		out[s] = v / n
	}
	return out
}

// Merge folds the accumulated sums of o into c, as if every trace added
// to o had been added to c after c's own traces. It is the reduction step
// of chunked streaming CPA: partial accumulators built over disjoint
// trace subsets merge into the whole-set accumulator. Merging partials in
// a fixed order yields bit-identical sums regardless of how the chunks
// were scheduled across workers.
func (c *CPA) Merge(o *CPA) error {
	if o.nHyp != c.nHyp || o.samples != c.samples {
		return fmt.Errorf("sca: merge dimension mismatch %dx%d vs %dx%d",
			o.nHyp, o.samples, c.nHyp, c.samples)
	}
	for k := range c.sumH {
		c.sumH[k] += o.sumH[k]
		c.sumHH[k] += o.sumHH[k]
	}
	for s := range c.sumT {
		c.sumT[s] += o.sumT[s]
		c.sumTT[s] += o.sumTT[s]
	}
	for i := range c.sumHT {
		c.sumHT[i] += o.sumHT[i]
	}
	c.count += o.count
	return nil
}

// Reset clears the accumulator for reuse.
func (c *CPA) Reset() {
	clear(c.sumH)
	clear(c.sumHH)
	clear(c.sumT)
	clear(c.sumTT)
	clear(c.sumHT)
	c.count = 0
}

// Clone returns an independent deep copy of the accumulator state.
func (c *CPA) Clone() *CPA {
	o := MustNewCPA(c.nHyp, c.samples)
	o.count = c.count
	copy(o.sumH, c.sumH)
	copy(o.sumHH, c.sumHH)
	copy(o.sumT, c.sumT)
	copy(o.sumTT, c.sumTT)
	copy(o.sumHT, c.sumHT)
	return o
}

// Equal reports whether two accumulators hold bit-identical state — the
// strict equivalence the streaming engine's determinism tests assert.
func (c *CPA) Equal(o *CPA) bool {
	if c.nHyp != o.nHyp || c.samples != o.samples || c.count != o.count {
		return false
	}
	eq := func(a, b []float64) bool {
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				return false
			}
		}
		return true
	}
	return eq(c.sumH, o.sumH) && eq(c.sumHH, o.sumHH) &&
		eq(c.sumT, o.sumT) && eq(c.sumTT, o.sumTT) && eq(c.sumHT, o.sumHT)
}

// Corr returns the correlation of hypothesis k at sample s.
func (c *CPA) Corr(k, s int) float64 {
	n := float64(c.count)
	if c.count < 2 {
		return 0
	}
	num := n*c.sumHT[k*c.samples+s] - c.sumH[k]*c.sumT[s]
	dh := n*c.sumHH[k] - c.sumH[k]*c.sumH[k]
	dt := n*c.sumTT[s] - c.sumT[s]*c.sumT[s]
	den := math.Sqrt(dh) * math.Sqrt(dt)
	if den == 0 || math.IsNaN(den) {
		return 0
	}
	return num / den
}

// CorrTrace returns the correlation-vs-time curve of hypothesis k — the
// curve plotted in the paper's Figures 3 and 4.
func (c *CPA) CorrTrace(k int) []float64 {
	out := make([]float64, c.samples)
	for s := range out {
		out[s] = c.Corr(k, s)
	}
	return out
}

// Peak returns the maximum absolute correlation of hypothesis k and the
// sample where it occurs.
func (c *CPA) Peak(k int) (corr float64, sample int) {
	best, idx := 0.0, 0
	for s := 0; s < c.samples; s++ {
		r := c.Corr(k, s)
		if math.Abs(r) > math.Abs(best) {
			best, idx = r, s
		}
	}
	return best, idx
}

// Attack summarizes a finished CPA: per-hypothesis peak correlations
// sorted into a ranking.
type Attack struct {
	// Peaks holds each hypothesis's maximum absolute correlation.
	Peaks []float64
	// PeakSamples holds the sample index of each hypothesis's peak.
	PeakSamples []int
	// Ranking lists hypotheses from strongest to weakest peak.
	Ranking []int
	// Traces is the number of traces accumulated.
	Traces int
}

// Result computes the attack summary.
func (c *CPA) Result() *Attack {
	a := &Attack{
		Peaks:       make([]float64, c.nHyp),
		PeakSamples: make([]int, c.nHyp),
		Ranking:     make([]int, c.nHyp),
		Traces:      c.count,
	}
	for k := 0; k < c.nHyp; k++ {
		r, s := c.Peak(k)
		a.Peaks[k] = r
		a.PeakSamples[k] = s
		a.Ranking[k] = k
	}
	// Insertion sort by |peak| descending: nHyp is small (256).
	for i := 1; i < len(a.Ranking); i++ {
		for j := i; j > 0; j-- {
			x, y := a.Ranking[j-1], a.Ranking[j]
			if math.Abs(a.Peaks[y]) > math.Abs(a.Peaks[x]) {
				a.Ranking[j-1], a.Ranking[j] = y, x
			} else {
				break
			}
		}
	}
	return a
}

// Best returns the top-ranked hypothesis and its peak correlation.
func (a *Attack) Best() (hyp int, corr float64) {
	h := a.Ranking[0]
	return h, a.Peaks[h]
}

// RankOf returns the 0-based rank of a hypothesis (0 = best).
func (a *Attack) RankOf(hyp int) int {
	for i, k := range a.Ranking {
		if k == hyp {
			return i
		}
	}
	return -1
}

// Margin returns the peak correlations of the best and second-best
// hypotheses.
func (a *Attack) Margin() (best, second float64) {
	if len(a.Ranking) < 2 {
		return math.Abs(a.Peaks[a.Ranking[0]]), 0
	}
	return math.Abs(a.Peaks[a.Ranking[0]]), math.Abs(a.Peaks[a.Ranking[1]])
}

// DistinguishConfidence returns the confidence with which the top-ranked
// hypothesis beats the runner-up, per the Fisher z difference test the
// paper applies in §5 ("the correct key is distinguishable from the best
// wrong guess with a statistical confidence > 99%").
func (a *Attack) DistinguishConfidence() float64 {
	best, second := a.Margin()
	return CorrDifferenceConfidence(best, second, a.Traces)
}

// ErrNoTraces reports an attack evaluated without any accumulated trace.
var ErrNoTraces = errors.New("sca: no traces accumulated")
