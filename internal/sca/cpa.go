package sca

import (
	"errors"
	"fmt"
	"math"
)

// CPA is an incremental correlation power analysis engine: it accumulates
// traces one at a time and computes, for every key hypothesis and every
// sample point, the Pearson correlation between the hypothesized leakage
// and the measured power. Memory is O(hypotheses × samples); each Add is
// one pass over the trace per hypothesis.
type CPA struct {
	nHyp    int
	samples int
	count   int

	sumH  []float64 // per hypothesis: Σh
	sumHH []float64 // per hypothesis: Σh²
	sumT  []float64 // per sample: Σt
	sumTT []float64 // per sample: Σt²
	sumHT []float64 // [hyp*samples + s]: Σh·t
}

// NewCPA returns an engine for nHyp key hypotheses over traces of the
// given sample count.
func NewCPA(nHyp, samples int) (*CPA, error) {
	if nHyp < 2 {
		return nil, fmt.Errorf("sca: need at least 2 hypotheses, got %d", nHyp)
	}
	if samples < 1 {
		return nil, fmt.Errorf("sca: need at least 1 sample, got %d", samples)
	}
	return &CPA{
		nHyp:    nHyp,
		samples: samples,
		sumH:    make([]float64, nHyp),
		sumHH:   make([]float64, nHyp),
		sumT:    make([]float64, samples),
		sumTT:   make([]float64, samples),
		sumHT:   make([]float64, nHyp*samples),
	}, nil
}

// MustNewCPA is NewCPA that panics on bad dimensions.
func MustNewCPA(nHyp, samples int) *CPA {
	c, err := NewCPA(nHyp, samples)
	if err != nil {
		panic(err)
	}
	return c
}

// Add accumulates one trace with its per-hypothesis leakage predictions
// (len(hyp) == hypotheses, len(t) == samples).
func (c *CPA) Add(t []float64, hyp []float64) error {
	if len(t) != c.samples {
		return fmt.Errorf("sca: trace has %d samples, want %d", len(t), c.samples)
	}
	if len(hyp) != c.nHyp {
		return fmt.Errorf("sca: %d hypotheses, want %d", len(hyp), c.nHyp)
	}
	for s, v := range t {
		c.sumT[s] += v
		c.sumTT[s] += v * v
	}
	for k, h := range hyp {
		c.sumH[k] += h
		c.sumHH[k] += h * h
		row := c.sumHT[k*c.samples : (k+1)*c.samples]
		for s, v := range t {
			row[s] += h * v
		}
	}
	c.count++
	return nil
}

// Count returns the number of accumulated traces.
func (c *CPA) Count() int { return c.count }

// Merge folds the accumulated sums of o into c, as if every trace added
// to o had been added to c after c's own traces. It is the reduction step
// of chunked streaming CPA: partial accumulators built over disjoint
// trace subsets merge into the whole-set accumulator. Merging partials in
// a fixed order yields bit-identical sums regardless of how the chunks
// were scheduled across workers.
func (c *CPA) Merge(o *CPA) error {
	if o.nHyp != c.nHyp || o.samples != c.samples {
		return fmt.Errorf("sca: merge dimension mismatch %dx%d vs %dx%d",
			o.nHyp, o.samples, c.nHyp, c.samples)
	}
	for k := range c.sumH {
		c.sumH[k] += o.sumH[k]
		c.sumHH[k] += o.sumHH[k]
	}
	for s := range c.sumT {
		c.sumT[s] += o.sumT[s]
		c.sumTT[s] += o.sumTT[s]
	}
	for i := range c.sumHT {
		c.sumHT[i] += o.sumHT[i]
	}
	c.count += o.count
	return nil
}

// Reset clears the accumulator for reuse.
func (c *CPA) Reset() {
	clear(c.sumH)
	clear(c.sumHH)
	clear(c.sumT)
	clear(c.sumTT)
	clear(c.sumHT)
	c.count = 0
}

// Clone returns an independent deep copy of the accumulator state.
func (c *CPA) Clone() *CPA {
	o := MustNewCPA(c.nHyp, c.samples)
	o.count = c.count
	copy(o.sumH, c.sumH)
	copy(o.sumHH, c.sumHH)
	copy(o.sumT, c.sumT)
	copy(o.sumTT, c.sumTT)
	copy(o.sumHT, c.sumHT)
	return o
}

// Equal reports whether two accumulators hold bit-identical state — the
// strict equivalence the streaming engine's determinism tests assert.
func (c *CPA) Equal(o *CPA) bool {
	if c.nHyp != o.nHyp || c.samples != o.samples || c.count != o.count {
		return false
	}
	eq := func(a, b []float64) bool {
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				return false
			}
		}
		return true
	}
	return eq(c.sumH, o.sumH) && eq(c.sumHH, o.sumHH) &&
		eq(c.sumT, o.sumT) && eq(c.sumTT, o.sumTT) && eq(c.sumHT, o.sumHT)
}

// Corr returns the correlation of hypothesis k at sample s.
func (c *CPA) Corr(k, s int) float64 {
	n := float64(c.count)
	if c.count < 2 {
		return 0
	}
	num := n*c.sumHT[k*c.samples+s] - c.sumH[k]*c.sumT[s]
	dh := n*c.sumHH[k] - c.sumH[k]*c.sumH[k]
	dt := n*c.sumTT[s] - c.sumT[s]*c.sumT[s]
	den := math.Sqrt(dh) * math.Sqrt(dt)
	if den == 0 || math.IsNaN(den) {
		return 0
	}
	return num / den
}

// CorrTrace returns the correlation-vs-time curve of hypothesis k — the
// curve plotted in the paper's Figures 3 and 4.
func (c *CPA) CorrTrace(k int) []float64 {
	out := make([]float64, c.samples)
	for s := range out {
		out[s] = c.Corr(k, s)
	}
	return out
}

// Peak returns the maximum absolute correlation of hypothesis k and the
// sample where it occurs.
func (c *CPA) Peak(k int) (corr float64, sample int) {
	best, idx := 0.0, 0
	for s := 0; s < c.samples; s++ {
		r := c.Corr(k, s)
		if math.Abs(r) > math.Abs(best) {
			best, idx = r, s
		}
	}
	return best, idx
}

// Attack summarizes a finished CPA: per-hypothesis peak correlations
// sorted into a ranking.
type Attack struct {
	// Peaks holds each hypothesis's maximum absolute correlation.
	Peaks []float64
	// PeakSamples holds the sample index of each hypothesis's peak.
	PeakSamples []int
	// Ranking lists hypotheses from strongest to weakest peak.
	Ranking []int
	// Traces is the number of traces accumulated.
	Traces int
}

// Result computes the attack summary.
func (c *CPA) Result() *Attack {
	a := &Attack{
		Peaks:       make([]float64, c.nHyp),
		PeakSamples: make([]int, c.nHyp),
		Ranking:     make([]int, c.nHyp),
		Traces:      c.count,
	}
	for k := 0; k < c.nHyp; k++ {
		r, s := c.Peak(k)
		a.Peaks[k] = r
		a.PeakSamples[k] = s
		a.Ranking[k] = k
	}
	// Insertion sort by |peak| descending: nHyp is small (256).
	for i := 1; i < len(a.Ranking); i++ {
		for j := i; j > 0; j-- {
			x, y := a.Ranking[j-1], a.Ranking[j]
			if math.Abs(a.Peaks[y]) > math.Abs(a.Peaks[x]) {
				a.Ranking[j-1], a.Ranking[j] = y, x
			} else {
				break
			}
		}
	}
	return a
}

// Best returns the top-ranked hypothesis and its peak correlation.
func (a *Attack) Best() (hyp int, corr float64) {
	h := a.Ranking[0]
	return h, a.Peaks[h]
}

// RankOf returns the 0-based rank of a hypothesis (0 = best).
func (a *Attack) RankOf(hyp int) int {
	for i, k := range a.Ranking {
		if k == hyp {
			return i
		}
	}
	return -1
}

// Margin returns the peak correlations of the best and second-best
// hypotheses.
func (a *Attack) Margin() (best, second float64) {
	if len(a.Ranking) < 2 {
		return math.Abs(a.Peaks[a.Ranking[0]]), 0
	}
	return math.Abs(a.Peaks[a.Ranking[0]]), math.Abs(a.Peaks[a.Ranking[1]])
}

// DistinguishConfidence returns the confidence with which the top-ranked
// hypothesis beats the runner-up, per the Fisher z difference test the
// paper applies in §5 ("the correct key is distinguishable from the best
// wrong guess with a statistical confidence > 99%").
func (a *Attack) DistinguishConfidence() float64 {
	best, second := a.Margin()
	return CorrDifferenceConfidence(best, second, a.Traces)
}

// ErrNoTraces reports an attack evaluated without any accumulated trace.
var ErrNoTraces = errors.New("sca: no traces accumulated")
