//go:build amd64

package sca

import "repro/internal/cpufeat"

// hasAVX512 gates the EVEX-encoded kernels; a package variable so the
// CPU-feature fallback tests can force the portable path.
var hasAVX512 = cpufeat.AVX512

// scaleAVX512 is the assembly kernel dst[j] = a*x[j] over n elements,
// n a multiple of 8.
func scaleAVX512(dst, x *float64, n int, a float64)

// vaddAVX512 is the assembly kernel dst[j] += x[j] over n elements, n a
// multiple of 8.
func vaddAVX512(dst, x *float64, n int)

// gaddAVX512 is the assembly add-only kernel: dst[j] += prod[offs[i]+j]
// for each of the nOffs offsets in order, over w elements, w a multiple
// of 8. Per element, the adds happen in offset order — the same
// sequence as gaddGeneric, bit for bit (plain VADDPD, no reassociation).
func gaddAVX512(dst, prod *float64, offs *uint32, nOffs, w int)

// scaleInto writes dst[j] = a * x[j], bit-identically to scaleGeneric.
func scaleInto(dst, x []float64, a float64) {
	n := len(dst)
	if !hasAVX512 || n < 8 {
		scaleGeneric(dst, x, a)
		return
	}
	vec := n &^ 7
	scaleAVX512(&dst[0], &x[0], vec, a)
	for j := vec; j < n; j++ {
		dst[j] = a * x[j]
	}
}

// sumSqAVX512 is the assembly kernel sumT[j] += x[j]; sumTT[j] +=
// x[j]*x[j] over n elements, n a multiple of 8.
func sumSqAVX512(sumT, sumTT, x *float64, n int)

// sumSqInto accumulates a trace into the Σt and Σt² rows — per element
// one add, one multiply and one add, bit-identically to sumSqGeneric.
func sumSqInto(sumT, sumTT, x []float64) {
	n := len(x)
	if !hasAVX512 || n < 8 {
		sumSqGeneric(sumT, sumTT, x)
		return
	}
	vec := n &^ 7
	sumSqAVX512(&sumT[0], &sumTT[0], &x[0], vec)
	for j := vec; j < n; j++ {
		v := x[j]
		sumT[j] += v
		sumTT[j] += v * v
	}
}

// classAddAVX512 is the assembly kernel sumT[j] += x[j]; sumTT[j] +=
// x[j]*x[j]; cls[j] += x[j] over n elements, n a multiple of 8.
func classAddAVX512(sumT, sumTT, cls, x *float64, n int)

// classAddInto fuses a trace's Σt, Σt² and class-sum accumulation into
// one sweep, bit-identically to classAddGeneric (and therefore to
// sumSqInto followed by vaddInto on the class row).
func classAddInto(sumT, sumTT, cls, x []float64) {
	n := len(x)
	if !hasAVX512 || n < 8 {
		classAddGeneric(sumT, sumTT, cls, x)
		return
	}
	vec := n &^ 7
	classAddAVX512(&sumT[0], &sumTT[0], &cls[0], &x[0], vec)
	for j := vec; j < n; j++ {
		v := x[j]
		sumT[j] += v
		sumTT[j] += v * v
		cls[j] += v
	}
}

// vaddInto accumulates dst[j] += x[j] — one rounded add per element,
// bit-identically to vaddGeneric.
func vaddInto(dst, x []float64) {
	n := len(dst)
	if !hasAVX512 || n < 8 {
		vaddGeneric(dst, x)
		return
	}
	vec := n &^ 7
	vaddAVX512(&dst[0], &x[0], vec)
	for j := vec; j < n; j++ {
		dst[j] += x[j]
	}
}

// gaddInto accumulates the product rows named by offs into dst in
// offset order, bit-identically to gaddGeneric.
func gaddInto(dst, prod []float64, offs []uint32) {
	n := len(dst)
	if len(offs) == 0 || n == 0 {
		return
	}
	if !hasAVX512 || n < 8 {
		gaddGeneric(dst, prod, offs)
		return
	}
	vec := n &^ 7
	gaddAVX512(&dst[0], &prod[0], &offs[0], len(offs), vec)
	for j := vec; j < n; j++ {
		for _, o := range offs {
			dst[j] += prod[int(o)+j]
		}
	}
}
