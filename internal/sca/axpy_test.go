package sca

import (
	"math"
	"math/rand"
	"testing"
)

// TestAxpyMatchesGenericBitwise pins the SIMD kernel to the scalar
// reference: identical results for every length and alignment.
func TestAxpyMatchesGenericBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for n := 0; n < 70; n++ {
		for trial := 0; trial < 8; trial++ {
			a := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
			x := make([]float64, n)
			d1 := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
				d1[i] = rng.NormFloat64()
			}
			d2 := append([]float64(nil), d1...)
			axpy(d1, x, a)
			axpyGeneric(d2, x, a)
			for i := range d1 {
				if math.Float64bits(d1[i]) != math.Float64bits(d2[i]) {
					t.Fatalf("n=%d i=%d: %x vs %x", n, i, d1[i], d2[i])
				}
			}
		}
	}
}

// TestAxpy4MatchesSequentialAxpyBitwise pins the fused four-trace
// kernel to its defining property: identical to four axpy passes in
// trace order, bit for bit, at every length.
func TestAxpy4MatchesSequentialAxpyBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for n := 0; n < 70; n++ {
		for trial := 0; trial < 4; trial++ {
			var as [4]float64
			var xs [4][]float64
			for j := range xs {
				as[j] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(5)-2))
				xs[j] = make([]float64, n)
				for i := range xs[j] {
					xs[j][i] = rng.NormFloat64()
				}
			}
			d1 := make([]float64, n)
			for i := range d1 {
				d1[i] = rng.NormFloat64()
			}
			d2 := append([]float64(nil), d1...)
			axpy4(d1, xs[0], xs[1], xs[2], xs[3], as[0], as[1], as[2], as[3])
			for j := range xs {
				axpy(d2, xs[j], as[j])
			}
			for i := range d1 {
				if math.Float64bits(d1[i]) != math.Float64bits(d2[i]) {
					t.Fatalf("n=%d i=%d: %x vs %x", n, i, d1[i], d2[i])
				}
			}
		}
	}
}
