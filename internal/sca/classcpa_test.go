package sca

import (
	"math"
	"math/rand"
	"testing"
)

// hwTable builds the Figure-3-shaped hypothesis table: class p (a
// plaintext byte) predicts HW(p^k) for hypothesis k — a small-alphabet
// 256x256 table like the real SubBytes one.
func hwTable() [][]float64 {
	t := make([][]float64, 256)
	for p := range t {
		t[p] = make([]float64, 256)
		for k := range t[p] {
			t[p][k] = float64(HW8(byte(p) ^ byte(k)))
		}
	}
	return t
}

// TestClassCPAMatchesCPA checks the conditional-sum algebra against the
// direct accumulator: same traces, same model, correlations equal up to
// floating-point reassociation (different but equivalent summation
// orders), and identical rankings on a strongly leaking signal.
func TestClassCPAMatchesCPA(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	table := hwTable()
	const samples, traces = 40, 600
	cc := MustNewClassCPA(samples, table)
	cpa := MustNewCPA(256, samples)
	const trueKey = 0x3C
	for i := 0; i < traces; i++ {
		p := rng.Intn(256)
		tr := make([]float64, samples)
		for s := range tr {
			tr[s] = rng.NormFloat64()
		}
		tr[7] += 2 * table[p][trueKey] // leak hypothesis trueKey at sample 7
		if err := cc.Add(p, tr); err != nil {
			t.Fatal(err)
		}
		if err := cpa.Add(tr, table[p]); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 256; k += 17 {
		for s := 0; s < samples; s++ {
			a, b := cc.Corr(k, s), cpa.Corr(k, s)
			if math.Abs(a-b) > 1e-9 {
				t.Fatalf("corr(%d,%d): class %v vs direct %v", k, s, a, b)
			}
		}
	}
	ra, rb := cc.Result(), cpa.Result()
	// HW(p^k) is linear in k, so k and its complement are perfectly
	// anti-correlated: both are valid winners of the |peak| ranking.
	if ra.Ranking[0] != rb.Ranking[0] {
		t.Fatalf("rankings disagree: class %#02x vs direct %#02x", ra.Ranking[0], rb.Ranking[0])
	}
	if got := ra.Ranking[0]; got != trueKey && got != trueKey^0xFF {
		t.Fatalf("top hypothesis %#02x, want %#02x or its complement", got, trueKey)
	}
}

// TestClassCPAAddBatchBitIdenticalToAdd pins the batch form to the
// serial reference.
func TestClassCPAAddBatchBitIdenticalToAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	table := hwTable()
	const samples, traces = 23, 77
	classes := make([]int, traces)
	trs := make([][]float64, traces)
	for i := range trs {
		classes[i] = rng.Intn(256)
		trs[i] = make([]float64, samples)
		for s := range trs[i] {
			trs[i][s] = rng.NormFloat64()
		}
	}
	a := MustNewClassCPA(samples, table)
	for i := range trs {
		if err := a.Add(classes[i], trs[i]); err != nil {
			t.Fatal(err)
		}
	}
	b := MustNewClassCPA(samples, table)
	if err := b.AddBatch(classes[:30], trs[:30]); err != nil {
		t.Fatal(err)
	}
	if err := b.AddBatch(classes[30:], trs[30:]); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("AddBatch diverges from serial Add")
	}
	// Derived statistics are a pure function of the state.
	for k := 0; k < 256; k += 31 {
		for s := 0; s < samples; s++ {
			if math.Float64bits(a.Corr(k, s)) != math.Float64bits(b.Corr(k, s)) {
				t.Fatalf("derived corr(%d,%d) differs between equal states", k, s)
			}
		}
	}
}

// TestClassCPAValidation rejects bad tables, classes and lengths.
func TestClassCPAValidation(t *testing.T) {
	if _, err := NewClassCPA(0, hwTable()); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := NewClassCPA(4, nil); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := NewClassCPA(4, [][]float64{{1}}); err == nil {
		t.Error("single-hypothesis table accepted")
	}
	if _, err := NewClassCPA(4, [][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged table accepted")
	}
	c := MustNewClassCPA(4, [][]float64{{1, 2}, {3, 4}})
	if err := c.Add(2, make([]float64, 4)); err == nil {
		t.Error("out-of-range class accepted")
	}
	if err := c.Add(0, make([]float64, 3)); err == nil {
		t.Error("short trace accepted")
	}
	if err := c.AddBatch([]int{0}, [][]float64{make([]float64, 4), make([]float64, 4)}); err == nil {
		t.Error("mismatched batch accepted")
	}
	if c.Count() != 0 {
		t.Errorf("failed adds accumulated %d traces", c.Count())
	}
}

// TestClassCPACloneAndReset covers the state-management helpers.
func TestClassCPACloneAndReset(t *testing.T) {
	c := MustNewClassCPA(3, [][]float64{{0, 1}, {1, 0}})
	if err := c.Add(1, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	d := c.Clone()
	if !c.Equal(d) {
		t.Fatal("clone differs from original")
	}
	if err := d.Add(0, []float64{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if c.Equal(d) {
		t.Fatal("clone shares state with original")
	}
	d.Reset()
	if d.Count() != 0 {
		t.Fatal("reset kept traces")
	}
	if err := d.Add(1, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if !c.Equal(d) {
		t.Fatal("reset accumulator diverges from fresh history")
	}
}

// TestVaddFallbackBitIdentical forces the portable element-wise add and
// compares against the vector kernel.
func TestVaddFallbackBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	saved := hasAVX512
	defer func() { hasAVX512 = saved }()
	for n := 0; n < 70; n++ {
		x := make([]float64, n)
		d0 := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			d0[i] = rng.NormFloat64()
		}
		hasAVX512 = saved
		d1 := append([]float64(nil), d0...)
		vaddInto(d1, x)
		hasAVX512 = false
		d2 := append([]float64(nil), d0...)
		vaddInto(d2, x)
		for i := range d1 {
			if math.Float64bits(d1[i]) != math.Float64bits(d2[i]) {
				t.Fatalf("n=%d i=%d: %x vs %x", n, i, d1[i], d2[i])
			}
		}
	}
}

// TestClassAddFallbackBitIdentical pins the fused class-accumulation
// kernel three ways: vector vs portable, and fused vs the unfused
// sumSq + vadd sweeps it replaced.
func TestClassAddFallbackBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	saved := hasAVX512
	defer func() { hasAVX512 = saved }()
	for n := 0; n < 70; n++ {
		x := make([]float64, n)
		st0 := make([]float64, n)
		stt0 := make([]float64, n)
		cls0 := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			st0[i] = rng.NormFloat64()
			stt0[i] = rng.NormFloat64()
			cls0[i] = rng.NormFloat64()
		}
		run := func(vec bool, fused bool) (st, stt, cls []float64) {
			hasAVX512 = vec && saved
			st = append([]float64(nil), st0...)
			stt = append([]float64(nil), stt0...)
			cls = append([]float64(nil), cls0...)
			if fused {
				classAddInto(st, stt, cls, x)
			} else {
				sumSqInto(st, stt, x)
				vaddInto(cls, x)
			}
			return
		}
		wantT, wantTT, wantC := run(false, false)
		for _, mode := range []struct{ vec, fused bool }{{true, true}, {false, true}, {true, false}} {
			gotT, gotTT, gotC := run(mode.vec, mode.fused)
			for i := 0; i < n; i++ {
				if math.Float64bits(gotT[i]) != math.Float64bits(wantT[i]) ||
					math.Float64bits(gotTT[i]) != math.Float64bits(wantTT[i]) ||
					math.Float64bits(gotC[i]) != math.Float64bits(wantC[i]) {
					t.Fatalf("n=%d i=%d vec=%v fused=%v: mismatch", n, i, mode.vec, mode.fused)
				}
			}
		}
	}
}
