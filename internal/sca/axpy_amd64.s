//go:build amd64

#include "textflag.h"

// func axpyAVX(dst, x *float64, n int, a float64)
//
// dst[i] += a * x[i] for i in [0, n), n a multiple of 4. Each lane is
// one VMULPD followed by one VADDPD — the same rounding sequence as the
// scalar kernel, deliberately not VFMADD — so the result is
// bit-identical to axpyGeneric.
TEXT ·axpyAVX(SB), NOSPLIT, $0-32
	MOVQ  dst+0(FP), DI
	MOVQ  x+8(FP), SI
	MOVQ  n+16(FP), CX
	VBROADCASTSD a+24(FP), Y0

	MOVQ CX, BX
	ANDQ $-16, BX          // BX = n rounded down to a multiple of 16
	JZ   quad

	XORQ AX, AX
loop16:
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y2
	VMOVUPD 64(SI)(AX*8), Y3
	VMOVUPD 96(SI)(AX*8), Y4
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VMULPD  Y0, Y3, Y3
	VMULPD  Y0, Y4, Y4
	VADDPD  (DI)(AX*8), Y1, Y1
	VADDPD  32(DI)(AX*8), Y2, Y2
	VADDPD  64(DI)(AX*8), Y3, Y3
	VADDPD  96(DI)(AX*8), Y4, Y4
	VMOVUPD Y1, (DI)(AX*8)
	VMOVUPD Y2, 32(DI)(AX*8)
	VMOVUPD Y3, 64(DI)(AX*8)
	VMOVUPD Y4, 96(DI)(AX*8)
	ADDQ    $16, AX
	CMPQ    AX, BX
	JLT     loop16
	JMP     quadentry

quad:
	XORQ AX, AX
quadentry:
	CMPQ AX, CX
	JGE  done
loop4:
	VMOVUPD (SI)(AX*8), Y1
	VMULPD  Y0, Y1, Y1
	VADDPD  (DI)(AX*8), Y1, Y1
	VMOVUPD Y1, (DI)(AX*8)
	ADDQ    $4, AX
	CMPQ    AX, CX
	JLT     loop4

done:
	VZEROUPPER
	RET

// func axpy4AVX(dst, x0, x1, x2, x3 *float64, n int, a0, a1, a2, a3 float64)
//
// dst[i] += a0*x0[i]; dst[i] += a1*x1[i]; dst[i] += a2*x2[i];
// dst[i] += a3*x3[i] — per element, four multiply-then-add steps in
// trace order on a row value held in a register, bit-identical to four
// sequential axpyAVX passes (again no fused multiply-add). n is a
// multiple of 4.
TEXT ·axpy4AVX(SB), NOSPLIT, $0-80
	MOVQ  dst+0(FP), DI
	MOVQ  x0+8(FP), SI
	MOVQ  x1+16(FP), R8
	MOVQ  x2+24(FP), R9
	MOVQ  x3+32(FP), R10
	MOVQ  n+40(FP), CX
	VBROADCASTSD a0+48(FP), Y0
	VBROADCASTSD a1+56(FP), Y1
	VBROADCASTSD a2+64(FP), Y2
	VBROADCASTSD a3+72(FP), Y3

	MOVQ CX, BX
	ANDQ $-8, BX           // BX = n rounded down to a multiple of 8
	JZ   f4quad

	XORQ AX, AX
f4loop8:
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD 32(DI)(AX*8), Y5
	VMOVUPD (SI)(AX*8), Y6
	VMOVUPD 32(SI)(AX*8), Y7
	VMULPD  Y0, Y6, Y6
	VMULPD  Y0, Y7, Y7
	VADDPD  Y6, Y4, Y4
	VADDPD  Y7, Y5, Y5
	VMOVUPD (R8)(AX*8), Y6
	VMOVUPD 32(R8)(AX*8), Y7
	VMULPD  Y1, Y6, Y6
	VMULPD  Y1, Y7, Y7
	VADDPD  Y6, Y4, Y4
	VADDPD  Y7, Y5, Y5
	VMOVUPD (R9)(AX*8), Y6
	VMOVUPD 32(R9)(AX*8), Y7
	VMULPD  Y2, Y6, Y6
	VMULPD  Y2, Y7, Y7
	VADDPD  Y6, Y4, Y4
	VADDPD  Y7, Y5, Y5
	VMOVUPD (R10)(AX*8), Y6
	VMOVUPD 32(R10)(AX*8), Y7
	VMULPD  Y3, Y6, Y6
	VMULPD  Y3, Y7, Y7
	VADDPD  Y6, Y4, Y4
	VADDPD  Y7, Y5, Y5
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y5, 32(DI)(AX*8)
	ADDQ    $8, AX
	CMPQ    AX, BX
	JLT     f4loop8
	JMP     f4quadentry

f4quad:
	XORQ AX, AX
f4quadentry:
	CMPQ AX, CX
	JGE  f4done
f4loop4:
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD (SI)(AX*8), Y6
	VMULPD  Y0, Y6, Y6
	VADDPD  Y6, Y4, Y4
	VMOVUPD (R8)(AX*8), Y6
	VMULPD  Y1, Y6, Y6
	VADDPD  Y6, Y4, Y4
	VMOVUPD (R9)(AX*8), Y6
	VMULPD  Y2, Y6, Y6
	VADDPD  Y6, Y4, Y4
	VMOVUPD (R10)(AX*8), Y6
	VMULPD  Y3, Y6, Y6
	VADDPD  Y6, Y4, Y4
	VMOVUPD Y4, (DI)(AX*8)
	ADDQ    $4, AX
	CMPQ    AX, CX
	JLT     f4loop4

f4done:
	VZEROUPPER
	RET
