package sca

import (
	"math"
	"math/rand"
	"testing"
)

func TestSecondOrderCPABreaksMasking(t *testing.T) {
	// Synthetic first-order-masked target: secret s = m ^ (s^m); the
	// trace leaks HW(m) at sample 2 and HW(s^m) at sample 6 — no single
	// sample depends on s, but the centered product of the two does.
	sbox := [16]uint8{0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2}
	const trueKey = 9
	const samples = 8
	rng := rand.New(rand.NewSource(21))

	first := MustNewCPA(16, samples)
	second, err := NewSecondOrderCPA(16, samples, 1, 4, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		d := uint8(rng.Intn(16))
		s := sbox[(d^trueKey)&0xF]
		m := uint8(rng.Intn(16))
		tr := make([]float64, samples)
		for j := range tr {
			tr[j] = 0.3 * rng.NormFloat64()
		}
		tr[2] += float64(HW8(m))
		tr[6] += float64(HW8(s ^ m))
		hyp := make([]float64, 16)
		for k := range hyp {
			hyp[k] = float64(HW8(sbox[(d^uint8(k))&0xF]))
		}
		if err := first.Add(tr, hyp); err != nil {
			t.Fatal(err)
		}
		if err := second.Add(tr, hyp); err != nil {
			t.Fatal(err)
		}
	}
	// First-order CPA must fail against the masking.
	a1 := first.Result()
	if best, _ := a1.Best(); best == trueKey && math.Abs(a1.Peaks[trueKey]) > 0.15 {
		t.Errorf("first-order CPA should not see through the masking (peak %v)", a1.Peaks[trueKey])
	}
	// Second-order CPA must recover the key.
	a2, err := second.Result()
	if err != nil {
		t.Fatal(err)
	}
	if best, corr := a2.Best(); best != trueKey {
		t.Fatalf("second-order CPA recovered %d, want %d (corr %v)", best, trueKey, corr)
	}
}

func TestSecondOrderCPAValidation(t *testing.T) {
	if _, err := NewSecondOrderCPA(4, 8, 5, 4, 0, 2); err == nil {
		t.Error("inverted window must be rejected")
	}
	if _, err := NewSecondOrderCPA(4, 8, 0, 2, 6, 9); err == nil {
		t.Error("out-of-range window must be rejected")
	}
	s, err := NewSecondOrderCPA(4, 8, 0, 2, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(make([]float64, 7), make([]float64, 4)); err == nil {
		t.Error("short trace must be rejected")
	}
	if _, err := s.Result(); err == nil {
		t.Error("empty result must error")
	}
}

func TestRankCurveFirstSuccess(t *testing.T) {
	rc := &RankCurve{TraceCounts: []int{10, 20, 30, 40}, Ranks: []int{12, 0, 0, 0}}
	if got := rc.FirstSuccess(); got != 20 {
		t.Errorf("FirstSuccess = %d, want 20", got)
	}
	rc = &RankCurve{TraceCounts: []int{10, 20}, Ranks: []int{3, 1}}
	if got := rc.FirstSuccess(); got != -1 {
		t.Errorf("FirstSuccess = %d, want -1", got)
	}
	rc = &RankCurve{TraceCounts: []int{10, 20, 30}, Ranks: []int{0, 2, 0}}
	if got := rc.FirstSuccess(); got != 30 {
		t.Errorf("unstable rank: FirstSuccess = %d, want 30", got)
	}
}

func TestGuessingEntropy(t *testing.T) {
	ge, err := GuessingEntropy([]int{0, 0, 0})
	if err != nil || ge != 0 {
		t.Errorf("perfect attacks GE = %v (err %v), want 0", ge, err)
	}
	ge, err = GuessingEntropy([]int{255, 255})
	if err != nil || math.Abs(ge-8) > 0.01 {
		t.Errorf("blind attacks GE = %v, want 8", ge)
	}
	if _, err := GuessingEntropy(nil); err == nil {
		t.Error("empty outcomes must error")
	}
	if _, err := GuessingEntropy([]int{-1}); err == nil {
		t.Error("negative rank must error")
	}
}

func TestSuccessRate(t *testing.T) {
	sr, err := SuccessRate([]int{0, 1, 0, 3})
	if err != nil || sr != 0.5 {
		t.Errorf("SuccessRate = %v (err %v), want 0.5", sr, err)
	}
	if _, err := SuccessRate(nil); err == nil {
		t.Error("empty outcomes must error")
	}
}
