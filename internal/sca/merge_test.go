package sca

import "testing"

func TestCPAMergeMatchesSequentialAdds(t *testing.T) {
	whole := MustNewCPA(4, 3)
	a, b := MustNewCPA(4, 3), MustNewCPA(4, 3)
	traces := [][]float64{{1, 2, 3}, {2, 0, 1}, {5, 4, 3}, {0, 1, 0}}
	hyps := [][]float64{{1, 0, 2, 3}, {0, 1, 1, 2}, {3, 2, 0, 1}, {1, 1, 1, 0}}
	for i := range traces {
		part := a
		if i >= 2 {
			part = b
		}
		for _, c := range []*CPA{whole, part} {
			if err := c.Add(traces[i], hyps[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	// Integer-valued data sums exactly, so the merged accumulator matches
	// the sequentially built one bit for bit.
	if !a.Equal(whole) {
		t.Fatal("merged accumulator differs from sequential accumulation")
	}
	if a.Count() != 4 {
		t.Fatalf("merged count %d, want 4", a.Count())
	}
}

func TestCPAMergeRejectsDimensionMismatch(t *testing.T) {
	if err := MustNewCPA(4, 3).Merge(MustNewCPA(4, 5)); err == nil {
		t.Error("sample mismatch must be rejected")
	}
	if err := MustNewCPA(4, 3).Merge(MustNewCPA(8, 3)); err == nil {
		t.Error("hypothesis mismatch must be rejected")
	}
}

func TestCPACloneAndReset(t *testing.T) {
	c := MustNewCPA(2, 2)
	if err := c.Add([]float64{1, 2}, []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	d := c.Clone()
	if !d.Equal(c) {
		t.Fatal("clone differs")
	}
	c.Reset()
	if c.Count() != 0 || d.Equal(c) {
		t.Fatal("reset did not clear the accumulator")
	}
	if !d.Equal(d.Clone()) {
		t.Fatal("clone of clone differs")
	}
}
