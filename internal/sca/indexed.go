package sca

// The Σh·t accumulation dominates streaming CPA. The attack-model
// hypothesis vectors, however, draw from tiny alphabets — Hamming
// weights and distances of bytes and words, at most a few dozen
// distinct float64 values per trace — so most of the per-row multiplies
// recompute a product some other row already paid for. The indexed row
// path exploits that: per trace it builds one scaled copy of the trace
// per distinct hypothesis value and then lets every row accumulate the
// precomputed product row it needs, turning the kernel's per-element
// work from multiply-then-add into a single add.
//
// Bit-identity is preserved exactly: IEEE-754 multiplication is a pure
// function of its operands, so v*t[s] computed once and reused is the
// same float64 the axpy path computes per row, and every accumulator
// element still receives its per-trace contributions in ascending trace
// order. The indexed path, the axpy path and serial Add are therefore
// interchangeable bit for bit — which path runs is pure speed policy
// (see rowsPath).

const (
	// maxAlphabet is the per-trace distinct-value budget. Hamming
	// weights of bytes need 9, of words 33; vectors wider than this
	// fall back to the axpy path.
	maxAlphabet = 40
	// tileCap is the sample-tile width: one tile of every product row
	// plus the touched accumulator rows stays cache-resident.
	tileCap = 64
	// indexedBlock caps the traces staged per product block, bounding
	// the scratch at indexedBlock*maxAlphabet*tileCap floats.
	indexedBlock = 64
)

// rowsPathKind selects the sumHT accumulation implementation; all
// produce bit-identical accumulators.
type rowsPathKind uint8

const (
	// rowsPathAuto picks the indexed path when the CPU runs it faster
	// than the axpy kernels (AVX-512), the axpy path otherwise.
	rowsPathAuto rowsPathKind = iota
	// rowsPathIndexed and rowsPathAxpy force one implementation — test
	// hooks for the cross-path equality assertions.
	rowsPathIndexed
	rowsPathAxpy
)

// rowsPath is the package-wide selection, overridable by tests.
var rowsPath = rowsPathAuto

func useIndexedRows() bool {
	switch rowsPath {
	case rowsPathIndexed:
		return true
	case rowsPathAxpy:
		return false
	}
	return hasAVX512
}

// indexedScratch is a CPA's lazily allocated staging area for the
// indexed row path.
type indexedScratch struct {
	vals []float64 // [trace*maxAlphabet + d]: distinct hypothesis values
	nd   []int     // per trace: number of distinct values
	idx  []uint8   // [trace*nHyp + k]: value index of hypothesis k
	offs []uint32  // [k*nTraces + i]: product-row element offsets
	prod []float64 // [ (trace*maxAlphabet + d)*tileCap + j ]: scaled tiles
}

func (c *CPA) indexedScratch() *indexedScratch {
	if c.idx == nil {
		c.idx = &indexedScratch{
			vals: make([]float64, indexedBlock*maxAlphabet),
			nd:   make([]int, indexedBlock),
			idx:  make([]uint8, indexedBlock*c.nHyp),
			offs: make([]uint32, c.nHyp*indexedBlock),
			prod: make([]float64, indexedBlock*maxAlphabet*tileCap),
		}
	}
	return c.idx
}

// addRows streams the batch's Σh·t contributions into the accumulator
// rows, in ascending trace order per element, choosing the fastest
// available bit-identical implementation.
func (c *CPA) addRows(traces, hyps [][]float64) {
	for start := 0; start < len(traces); start += indexedBlock {
		end := start + indexedBlock
		if end > len(traces) {
			end = len(traces)
		}
		if !c.addRowsIndexed(traces[start:end], hyps[start:end]) {
			c.addRowsAxpy(traces[start:end], hyps[start:end])
		}
	}
}

// addRowsAxpy is the cache-blocked multiply-add implementation: each
// hypothesis row stays resident while the traces stream through the
// fused four-trace kernel.
func (c *CPA) addRowsAxpy(traces, hyps [][]float64) {
	for k := 0; k < c.nHyp; k++ {
		row := c.sumHT[k*c.samples : (k+1)*c.samples]
		i := 0
		for ; i+4 <= len(traces); i += 4 {
			axpy4(row,
				traces[i], traces[i+1], traces[i+2], traces[i+3],
				hyps[i][k], hyps[i+1][k], hyps[i+2][k], hyps[i+3][k])
		}
		for ; i < len(traces); i++ {
			axpy(row, traces[i], hyps[i][k])
		}
	}
}

// addRowsIndexed is the small-alphabet implementation. It reports false
// — leaving the accumulator untouched — when a hypothesis vector's
// alphabet exceeds maxAlphabet or the indexed path is not selected.
func (c *CPA) addRowsIndexed(traces, hyps [][]float64) bool {
	if !useIndexedRows() {
		return false
	}
	nT := len(traces)
	if nT == 0 {
		return true
	}
	sc := c.indexedScratch()

	// Classify every hypothesis value against its trace's alphabet.
	for i, h := range hyps {
		vals := sc.vals[i*maxAlphabet : i*maxAlphabet+maxAlphabet]
		idx := sc.idx[i*c.nHyp : (i+1)*c.nHyp]
		nd := 0
		for k, v := range h {
			d := 0
			for ; d < nd; d++ {
				if vals[d] == v {
					break
				}
			}
			if d == nd {
				if nd == maxAlphabet {
					return false
				}
				// NaN never matches itself; send such vectors to the
				// axpy path rather than overflow the alphabet.
				if v != v {
					return false
				}
				vals[nd] = v
				nd++
			}
			idx[k] = uint8(d)
		}
		sc.nd[i] = nd
	}

	// Element offsets of each (hypothesis, trace) product row.
	for k := 0; k < c.nHyp; k++ {
		offs := sc.offs[k*nT : (k+1)*nT]
		for i := 0; i < nT; i++ {
			offs[i] = uint32((i*maxAlphabet + int(sc.idx[i*c.nHyp+k])) * tileCap)
		}
	}

	// Tile over samples: scale each trace once per distinct value, then
	// every row accumulates its product rows with the add-only kernel.
	for base := 0; base < c.samples; base += tileCap {
		w := c.samples - base
		if w > tileCap {
			w = tileCap
		}
		for i, t := range traces {
			tt := t[base : base+w]
			for d := 0; d < sc.nd[i]; d++ {
				off := (i*maxAlphabet + d) * tileCap
				scaleInto(sc.prod[off:off+w], tt, sc.vals[i*maxAlphabet+d])
			}
		}
		for k := 0; k < c.nHyp; k++ {
			gaddInto(c.sumHT[k*c.samples+base:k*c.samples+base+w], sc.prod, sc.offs[k*nT:(k+1)*nT])
		}
	}
	return true
}

// scaleGeneric writes dst[j] = a * x[j] — the portable scaling kernel.
// Each product is a single IEEE-754 multiplication, the same rounding
// the axpy kernels perform before their add.
func scaleGeneric(dst, x []float64, a float64) {
	if len(dst) == 0 {
		return
	}
	_ = x[len(dst)-1]
	for j := range dst {
		dst[j] = a * x[j]
	}
}

// vaddGeneric accumulates dst[j] += x[j] — the portable element-wise
// add kernel (each element is one rounded add; there is no ordering
// freedom to preserve).
func vaddGeneric(dst, x []float64) {
	if len(dst) == 0 {
		return
	}
	_ = x[len(dst)-1]
	for j := range dst {
		dst[j] += x[j]
	}
}

// sumSqGeneric accumulates x into the Σt and Σt² rows — the portable
// kernel behind every accumulator's per-sample moment update: per
// element, one rounded add into sumT, one rounded multiply and one
// rounded add into sumTT.
func sumSqGeneric(sumT, sumTT, x []float64) {
	if len(x) == 0 {
		return
	}
	_ = sumT[len(x)-1]
	_ = sumTT[len(x)-1]
	for j, v := range x {
		sumT[j] += v
		sumTT[j] += v * v
	}
}

// classAddGeneric is the fused per-trace accumulation of the class-sum
// engines: one pass folding a trace into the Σt and Σt² rows and its
// class's conditional sum. Per element the op sequences per output row
// are exactly sumSqGeneric's followed by vaddGeneric's — one rounded
// add into sumT, one rounded multiply and add into sumTT, one rounded
// add into cls — so fusing the sweeps changes no accumulated bit, only
// the number of passes over the trace.
func classAddGeneric(sumT, sumTT, cls, x []float64) {
	if len(x) == 0 {
		return
	}
	_ = sumT[len(x)-1]
	_ = sumTT[len(x)-1]
	_ = cls[len(x)-1]
	for j, v := range x {
		sumT[j] += v
		sumTT[j] += v * v
		cls[j] += v
	}
}

// gaddGeneric accumulates dst[j] += prod[o+j] for every offset o in
// order — the portable add-only kernel. Per element, contributions are
// applied in offset (trace) order, the accumulation order the whole
// analysis chain is pinned to.
func gaddGeneric(dst, prod []float64, offs []uint32) {
	for _, o := range offs {
		p := prod[o : int(o)+len(dst)]
		for j := range dst {
			dst[j] += p[j]
		}
	}
}
