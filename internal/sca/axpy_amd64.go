//go:build amd64

package sca

// The accumulation kernel dst[s] += a*x[s] dominates streaming CPA (it
// touches hypotheses × samples elements per trace), so on amd64 it runs
// as hand-written AVX when the CPU has it. The vector kernel performs
// the exact scalar operation per lane — one VMULPD then one VADDPD,
// never a fused multiply-add — so its results are bit-identical to
// axpyGeneric's and the engine's determinism contract is unaffected.

import "repro/internal/cpufeat"

// hasAVX gates the VEX-encoded kernels; a package variable so the
// CPU-feature fallback tests can force the portable path.
var hasAVX = cpufeat.AVX

// axpyAVX is the assembly kernel over n full elements; the caller
// handles shorter-than-register tails.
func axpyAVX(dst, x *float64, n int, a float64)

// axpy4AVX is the four-trace fused assembly kernel over n elements.
func axpy4AVX(dst, x0, x1, x2, x3 *float64, n int, a0, a1, a2, a3 float64)

// axpy performs dst[s] += a * x[s] over the common length,
// bit-identically to axpyGeneric.
func axpy(dst, x []float64, a float64) {
	n := len(x)
	if len(dst) < n {
		n = len(dst)
	}
	if !hasAVX || n < 8 {
		axpyGeneric(dst[:n], x[:n], a)
		return
	}
	vec := n &^ 3
	axpyAVX(&dst[0], &x[0], vec, a)
	for i := vec; i < n; i++ {
		dst[i] += a * x[i]
	}
}

// axpy4 applies four traces to one row in a single pass,
// bit-identically to four sequential axpy calls.
func axpy4(dst, x0, x1, x2, x3 []float64, a0, a1, a2, a3 float64) {
	n := len(dst)
	for _, x := range [4][]float64{x0, x1, x2, x3} {
		if len(x) < n {
			n = len(x)
		}
	}
	if !hasAVX || n < 8 {
		axpy4Generic(dst[:n], x0[:n], x1[:n], x2[:n], x3[:n], a0, a1, a2, a3)
		return
	}
	vec := n &^ 3
	axpy4AVX(&dst[0], &x0[0], &x1[0], &x2[0], &x3[0], vec, a0, a1, a2, a3)
	for i := vec; i < n; i++ {
		v := dst[i]
		v += a0 * x0[i]
		v += a1 * x1[i]
		v += a2 * x2[i]
		v += a3 * x3[i]
		dst[i] = v
	}
}
