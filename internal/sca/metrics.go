package sca

import (
	"errors"
	"fmt"
	"math"
)

// SecondOrderCPA is a second-order correlation attack engine: it
// preprocesses each trace with the centered product of two sample
// windows before correlating, the standard technique against first-order
// masked implementations whose two shares leak at different times.
// Memory is O(hypotheses × |window1| × |window2|).
type SecondOrderCPA struct {
	inner    *CPA
	w1a, w1b int // window 1: [w1a, w1b)
	w2a, w2b int // window 2: [w2a, w2b)

	// Running means for centering, via Welford.
	count int
	mean  []float64
	raw   [][]float64 // buffered traces (centering needs the final means)
	hyps  [][]float64
}

// NewSecondOrderCPA builds an engine combining samples of [w1a,w1b) with
// samples of [w2a,w2b).
func NewSecondOrderCPA(nHyp, samples, w1a, w1b, w2a, w2b int) (*SecondOrderCPA, error) {
	switch {
	case w1a < 0 || w1b > samples || w1a >= w1b:
		return nil, fmt.Errorf("sca: bad window 1 [%d,%d)", w1a, w1b)
	case w2a < 0 || w2b > samples || w2a >= w2b:
		return nil, fmt.Errorf("sca: bad window 2 [%d,%d)", w2a, w2b)
	}
	combined := (w1b - w1a) * (w2b - w2a)
	inner, err := NewCPA(nHyp, combined)
	if err != nil {
		return nil, err
	}
	return &SecondOrderCPA{
		inner: inner,
		w1a:   w1a, w1b: w1b, w2a: w2a, w2b: w2b,
		mean: make([]float64, samples),
	}, nil
}

// Add buffers one trace with its per-hypothesis predictions. The centered
// products are computed at Result time, once the sample means are final.
func (s *SecondOrderCPA) Add(t []float64, hyp []float64) error {
	if len(t) != len(s.mean) {
		return fmt.Errorf("sca: trace has %d samples, want %d", len(t), len(s.mean))
	}
	s.count++
	n := float64(s.count)
	for i, v := range t {
		s.mean[i] += (v - s.mean[i]) / n
	}
	tc := make([]float64, len(t))
	copy(tc, t)
	hc := make([]float64, len(hyp))
	copy(hc, hyp)
	s.raw = append(s.raw, tc)
	s.hyps = append(s.hyps, hc)
	return nil
}

// Result runs the centered-product correlation and returns the attack
// summary over the combined sample space.
func (s *SecondOrderCPA) Result() (*Attack, error) {
	if s.count < 2 {
		return nil, ErrNoTraces
	}
	prod := make([]float64, (s.w1b-s.w1a)*(s.w2b-s.w2a))
	for i, t := range s.raw {
		k := 0
		for a := s.w1a; a < s.w1b; a++ {
			ca := t[a] - s.mean[a]
			for b := s.w2a; b < s.w2b; b++ {
				prod[k] = ca * (t[b] - s.mean[b])
				k++
			}
		}
		if err := s.inner.Add(prod, s.hyps[i]); err != nil {
			return nil, err
		}
	}
	s.raw, s.hyps = nil, nil
	return s.inner.Result(), nil
}

// RankCurve tracks how a hypothesis's rank evolves with the number of
// traces — the standard way to report attack efficiency.
type RankCurve struct {
	// TraceCounts are the evaluation points.
	TraceCounts []int
	// Ranks holds the target hypothesis's rank at each point (0 = best).
	Ranks []int
}

// FirstSuccess returns the smallest evaluated trace count at which the
// target ranked first and stayed first to the end, or -1.
func (rc *RankCurve) FirstSuccess() int {
	last := -1
	for i := len(rc.Ranks) - 1; i >= 0; i-- {
		if rc.Ranks[i] != 0 {
			break
		}
		last = rc.TraceCounts[i]
	}
	return last
}

// GuessingEntropy returns the average log2 rank (plus one) of the correct
// hypothesis over a set of independent attack outcomes — the standard
// multi-experiment metric.
func GuessingEntropy(ranks []int) (float64, error) {
	if len(ranks) == 0 {
		return 0, errors.New("sca: no outcomes")
	}
	sum := 0.0
	for _, r := range ranks {
		if r < 0 {
			return 0, fmt.Errorf("sca: negative rank %d", r)
		}
		sum += float64(r) + 1
	}
	return math.Log2(sum / float64(len(ranks))), nil
}

// SuccessRate returns the fraction of outcomes with rank 0.
func SuccessRate(ranks []int) (float64, error) {
	if len(ranks) == 0 {
		return 0, errors.New("sca: no outcomes")
	}
	ok := 0
	for _, r := range ranks {
		if r == 0 {
			ok++
		}
	}
	return float64(ok) / float64(len(ranks)), nil
}
