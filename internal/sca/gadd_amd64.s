//go:build amd64

#include "textflag.h"

// func scaleAVX512(dst, x *float64, n int, a float64)
//
// dst[j] = a * x[j] for j in [0, n), n a multiple of 8. One VMULPD per
// lane — the identical single rounding scaleGeneric performs.
TEXT ·scaleAVX512(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         x+8(FP), SI
	MOVQ         n+16(FP), CX
	VBROADCASTSD a+24(FP), Z0

	XORQ AX, AX
scloop:
	VMOVUPD (SI)(AX*8), Z1
	VMULPD  Z0, Z1, Z1
	VMOVUPD Z1, (DI)(AX*8)
	ADDQ    $8, AX
	CMPQ    AX, CX
	JLT     scloop
	VZEROUPPER
	RET

// func sumSqAVX512(sumT, sumTT, x *float64, n int)
//
// sumT[j] += x[j]; sumTT[j] += x[j]*x[j] for j in [0, n), n a multiple
// of 8 — per element the same add, multiply, add sequence as
// sumSqGeneric (no FMA), so the result is bit-identical.
TEXT ·sumSqAVX512(SB), NOSPLIT, $0-32
	MOVQ sumT+0(FP), DI
	MOVQ sumTT+8(FP), SI
	MOVQ x+16(FP), R8
	MOVQ n+24(FP), CX

	XORQ AX, AX
ssloop:
	VMOVUPD (R8)(AX*8), Z1
	VMOVUPD (DI)(AX*8), Z2
	VADDPD  Z1, Z2, Z2
	VMOVUPD Z2, (DI)(AX*8)
	VMULPD  Z1, Z1, Z1
	VADDPD  (SI)(AX*8), Z1, Z1
	VMOVUPD Z1, (SI)(AX*8)
	ADDQ    $8, AX
	CMPQ    AX, CX
	JLT     ssloop
	VZEROUPPER
	RET

// func vaddAVX512(dst, x *float64, n int)
//
// dst[j] += x[j] for j in [0, n), n a multiple of 8 — one VADDPD per
// lane, the identical single rounding vaddGeneric performs.
TEXT ·vaddAVX512(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), CX

	XORQ AX, AX
valoop:
	VMOVUPD (DI)(AX*8), Z1
	VADDPD  (SI)(AX*8), Z1, Z1
	VMOVUPD Z1, (DI)(AX*8)
	ADDQ    $8, AX
	CMPQ    AX, CX
	JLT     valoop
	VZEROUPPER
	RET

// func gaddAVX512(dst, prod *float64, offs *uint32, nOffs, w int)
//
// dst[j] += prod[offs[i]+j] for i in [0, nOffs) in ascending i, j in
// [0, w), w a multiple of 8. Per element the adds form a serial chain
// in offset order — exactly gaddGeneric's rounding sequence. The outer
// loop walks j in blocks of 64 (eight independent accumulator
// registers, enough chains to hide VADDPD latency), falling back to
// 8-wide blocks for the remainder.
TEXT ·gaddAVX512(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ prod+8(FP), SI
	MOVQ offs+16(FP), R8
	MOVQ nOffs+24(FP), CX
	MOVQ w+32(FP), DX

	XORQ AX, AX            // j, the element base

blk64:
	MOVQ DX, BX
	SUBQ AX, BX
	CMPQ BX, $64
	JLT  blk8

	// Eight accumulators: dst[j .. j+63].
	VMOVUPD (DI)(AX*8), Z0
	VMOVUPD 64(DI)(AX*8), Z1
	VMOVUPD 128(DI)(AX*8), Z2
	VMOVUPD 192(DI)(AX*8), Z3
	VMOVUPD 256(DI)(AX*8), Z4
	VMOVUPD 320(DI)(AX*8), Z5
	VMOVUPD 384(DI)(AX*8), Z6
	VMOVUPD 448(DI)(AX*8), Z7

	MOVQ R8, R9            // offset cursor
	MOVQ CX, R10           // offsets remaining

g64:
	MOVL   (R9), R11
	LEAQ   (SI)(R11*8), R12
	VADDPD (R12)(AX*8), Z0, Z0
	VADDPD 64(R12)(AX*8), Z1, Z1
	VADDPD 128(R12)(AX*8), Z2, Z2
	VADDPD 192(R12)(AX*8), Z3, Z3
	VADDPD 256(R12)(AX*8), Z4, Z4
	VADDPD 320(R12)(AX*8), Z5, Z5
	VADDPD 384(R12)(AX*8), Z6, Z6
	VADDPD 448(R12)(AX*8), Z7, Z7
	ADDQ   $4, R9
	DECQ   R10
	JNZ    g64

	VMOVUPD Z0, (DI)(AX*8)
	VMOVUPD Z1, 64(DI)(AX*8)
	VMOVUPD Z2, 128(DI)(AX*8)
	VMOVUPD Z3, 192(DI)(AX*8)
	VMOVUPD Z4, 256(DI)(AX*8)
	VMOVUPD Z5, 320(DI)(AX*8)
	VMOVUPD Z6, 384(DI)(AX*8)
	VMOVUPD Z7, 448(DI)(AX*8)
	ADDQ    $64, AX
	JMP     blk64

blk8:
	CMPQ AX, DX
	JGE  gdone

	VMOVUPD (DI)(AX*8), Z0
	MOVQ    R8, R9
	MOVQ    CX, R10

g8:
	MOVL   (R9), R11
	LEAQ   (SI)(R11*8), R12
	VADDPD (R12)(AX*8), Z0, Z0
	ADDQ   $4, R9
	DECQ   R10
	JNZ    g8

	VMOVUPD Z0, (DI)(AX*8)
	ADDQ    $8, AX
	JMP     blk8

gdone:
	VZEROUPPER
	RET

// func classAddAVX512(sumT, sumTT, cls, x *float64, n int)
//
// sumT[j] += x[j]; sumTT[j] += x[j]*x[j]; cls[j] += x[j] for j in
// [0, n), n a multiple of 8 — per output row the same add / multiply-add
// / add sequence as classAddGeneric (no FMA), so the result is
// bit-identical to the unfused sumSq + vadd sweeps.
TEXT ·classAddAVX512(SB), NOSPLIT, $0-40
	MOVQ sumT+0(FP), DI
	MOVQ sumTT+8(FP), SI
	MOVQ cls+16(FP), DX
	MOVQ x+24(FP), R8
	MOVQ n+32(FP), CX

	XORQ AX, AX
caloop:
	VMOVUPD (R8)(AX*8), Z1
	VMOVUPD (DI)(AX*8), Z2
	VADDPD  Z1, Z2, Z2
	VMOVUPD Z2, (DI)(AX*8)
	VMULPD  Z1, Z1, Z3
	VADDPD  (SI)(AX*8), Z3, Z3
	VMOVUPD Z3, (SI)(AX*8)
	VADDPD  (DX)(AX*8), Z1, Z1
	VMOVUPD Z1, (DX)(AX*8)
	ADDQ    $8, AX
	CMPQ    AX, CX
	JLT     caloop
	VZEROUPPER
	RET
