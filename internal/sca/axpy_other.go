//go:build !amd64

package sca

// axpy performs dst[s] += a * x[s]; on this architecture the portable
// kernel is the only implementation.
func axpy(dst, x []float64, a float64) { axpyGeneric(dst, x, a) }

// axpy4 applies four traces to one row in a single pass.
func axpy4(dst, x0, x1, x2, x3 []float64, a0, a1, a2, a3 float64) {
	axpy4Generic(dst, x0, x1, x2, x3, a0, a1, a2, a3)
}
