package sca

import (
	"fmt"
	"math"
)

// Accumulator is the read side shared by the streaming correlation
// engines: everything an attack evaluates after (or while) traces
// accumulate. CPA implements it by maintaining the Pearson sums
// directly; ClassCPA by deriving them from per-class trace sums.
type Accumulator interface {
	// Count returns the number of accumulated traces.
	Count() int
	// Corr returns the correlation of hypothesis k at sample s.
	Corr(k, s int) float64
	// CorrTrace returns hypothesis k's correlation-vs-time curve.
	CorrTrace(k int) []float64
	// Peak returns hypothesis k's maximum absolute correlation and its
	// sample index.
	Peak(k int) (corr float64, sample int)
	// Result computes the ranking summary over all hypotheses.
	Result() *Attack
}

var (
	_ Accumulator = (*CPA)(nil)
	_ Accumulator = (*ClassCPA)(nil)
)

// ClassCPA is a streaming CPA engine for table-driven leakage models:
// attacks where every hypothesis's prediction for a trace is a function
// of one small model input — for the paper's Figure 3 model,
// HW(SubBytes(pt[b] ^ k)) depends only on the plaintext byte. Instead
// of accumulating 256 hypothesis rows per trace, it buckets traces by
// the model input ("class") and keeps one running sum per class; every
// Pearson sum the correlation needs is then derived exactly from the
// class sums and the hypothesis table:
//
//	Σh   = Σ_p n_p·H[p][k]      Σh·t = Σ_p H[p][k]·S_p[t]
//
// where n_p counts and S_p sums the traces of class p. This is the
// conditional-sum optimization of classical CPA tooling: per-trace cost
// drops from hypotheses×samples multiply-adds to a single samples-long
// add, with the hypothesis dimension paid once at evaluation time.
//
// Determinism contract. The accumulator state is a pure function of the
// trace sequence: each class sum receives its traces' samples in
// arrival order (one rounded add per trace), and arrival order is trace
// order under the engine's ordered reduction — so the state never
// depends on workers, chunking or lane width. Derivation sweeps classes
// in ascending index, skipping empty classes (their contribution is a
// ±0 that cannot change any accumulated bit), so every statistic is a
// pure function of the state. Add the same traces in the same order and
// every derived correlation is bit-identical.
type ClassCPA struct {
	classes int
	nHyp    int
	samples int
	count   int

	table    []float64 // [p*nHyp + k]: hypothesis k's prediction for class p
	classN   []int64   // per class: trace count
	classSum []float64 // [p*samples + s]: Σt over the class's traces
	sumT     []float64 // per sample: Σt
	sumTT    []float64 // per sample: Σt²

	// derived caches the Pearson sums computed from the class state;
	// accumulation invalidates it.
	derived *classDerived
}

// classDerived holds the Pearson sums derived from the class state.
type classDerived struct {
	sumH  []float64
	sumHH []float64
	sumHT []float64
}

// NewClassCPA returns a class-sum engine over the given hypothesis
// table: table[p][k] is hypothesis k's predicted leakage for model-input
// class p. All rows must share one length (the hypothesis count, >= 2).
func NewClassCPA(samples int, table [][]float64) (*ClassCPA, error) {
	if samples < 1 {
		return nil, fmt.Errorf("sca: need at least 1 sample, got %d", samples)
	}
	if len(table) < 1 {
		return nil, fmt.Errorf("sca: need at least 1 model-input class")
	}
	nHyp := len(table[0])
	if nHyp < 2 {
		return nil, fmt.Errorf("sca: need at least 2 hypotheses, got %d", nHyp)
	}
	c := &ClassCPA{
		classes:  len(table),
		nHyp:     nHyp,
		samples:  samples,
		table:    make([]float64, len(table)*nHyp),
		classN:   make([]int64, len(table)),
		classSum: make([]float64, len(table)*samples),
		sumT:     make([]float64, samples),
		sumTT:    make([]float64, samples),
	}
	for p, row := range table {
		if len(row) != nHyp {
			return nil, fmt.Errorf("sca: class %d has %d hypotheses, want %d", p, len(row), nHyp)
		}
		copy(c.table[p*nHyp:], row)
	}
	return c, nil
}

// MustNewClassCPA is NewClassCPA that panics on a bad table.
func MustNewClassCPA(samples int, table [][]float64) *ClassCPA {
	c, err := NewClassCPA(samples, table)
	if err != nil {
		panic(err)
	}
	return c
}

// Classes returns the model-input class count.
func (c *ClassCPA) Classes() int { return c.classes }

// Hypotheses returns the hypothesis count.
func (c *ClassCPA) Hypotheses() int { return c.nHyp }

// Count returns the number of accumulated traces.
func (c *ClassCPA) Count() int { return c.count }

// MeanTrace returns the per-sample mean trace Σt/n — the centering
// vector a second-order pass feeds to NewClassCPA2. It is a pure
// function of the accumulator state: sumT receives its per-trace adds
// in trace order, so two runs over the same trace sequence return
// bit-identical means.
func (c *ClassCPA) MeanTrace() []float64 {
	out := make([]float64, c.samples)
	if c.count == 0 {
		return out
	}
	n := float64(c.count)
	for s, v := range c.sumT {
		out[s] = v / n
	}
	return out
}

// Add accumulates one trace under its model-input class. Accumulation
// order is the determinism contract: the same (class, trace) sequence
// always leaves bit-identical state.
func (c *ClassCPA) Add(class int, t []float64) error {
	if class < 0 || class >= c.classes {
		return fmt.Errorf("sca: class %d out of [0,%d)", class, c.classes)
	}
	if len(t) != c.samples {
		return fmt.Errorf("sca: trace has %d samples, want %d", len(t), c.samples)
	}
	classAddInto(c.sumT, c.sumTT, c.classSum[class*c.samples:(class+1)*c.samples], t)
	c.classN[class]++
	c.count++
	c.derived = nil
	return nil
}

// AddBatch accumulates a batch of traces with their classes, bit-
// identically to calling Add(classes[i], traces[i]) in ascending i.
func (c *ClassCPA) AddBatch(classes []int, traces [][]float64) error {
	if len(classes) != len(traces) {
		return fmt.Errorf("sca: batch of %d traces with %d classes", len(traces), len(classes))
	}
	for i, t := range traces {
		if len(t) != c.samples {
			return fmt.Errorf("sca: trace %d of batch has %d samples, want %d", i, len(t), c.samples)
		}
		if classes[i] < 0 || classes[i] >= c.classes {
			return fmt.Errorf("sca: trace %d of batch has class %d, out of [0,%d)", i, classes[i], c.classes)
		}
	}
	for i, t := range traces {
		p := classes[i]
		classAddInto(c.sumT, c.sumTT, c.classSum[p*c.samples:(p+1)*c.samples], t)
		c.classN[p]++
	}
	c.count += len(traces)
	c.derived = nil
	return nil
}

// derive materializes the Pearson sums from the class state: one sweep
// over the classes in ascending index, empty classes skipped (a
// skipped class would contribute 0·h and 0·S terms — ±0 values whose
// addition cannot alter any accumulated bit, since exact cancellation
// rounds to +0 and x+(±0) preserves x's bits for every non-zero x).
func (c *ClassCPA) derive() *classDerived {
	if c.derived != nil {
		return c.derived
	}
	d := &classDerived{
		sumH:  make([]float64, c.nHyp),
		sumHH: make([]float64, c.nHyp),
		sumHT: make([]float64, c.nHyp*c.samples),
	}
	for p := 0; p < c.classes; p++ {
		if c.classN[p] == 0 {
			continue
		}
		np := float64(c.classN[p])
		row := c.table[p*c.nHyp : (p+1)*c.nHyp]
		for k, h := range row {
			d.sumH[k] += np * h
			d.sumHH[k] += np * (h * h)
		}
	}
	// Σh·t rows, sample-tiled so a block of class sums stays cache-
	// resident while every hypothesis row streams through it once.
	const tile = 512
	for base := 0; base < c.samples; base += tile {
		w := c.samples - base
		if w > tile {
			w = tile
		}
		for k := 0; k < c.nHyp; k++ {
			row := d.sumHT[k*c.samples+base : k*c.samples+base+w]
			c.accumRow(row, base, w, k)
		}
	}
	c.derived = d
	return d
}

// accumRow adds Σ_p H[p][k]·S_p[base:base+w] into row, classes in
// ascending index, empty classes skipped.
func (c *ClassCPA) accumRow(row []float64, base, w, k int) {
	quad := [4][]float64{}
	coef := [4]float64{}
	n := 0
	flush := func() {
		switch n {
		case 4:
			axpy4(row, quad[0], quad[1], quad[2], quad[3], coef[0], coef[1], coef[2], coef[3])
		default:
			for i := 0; i < n; i++ {
				axpy(row, quad[i], coef[i])
			}
		}
		n = 0
	}
	for p := 0; p < c.classes; p++ {
		if c.classN[p] == 0 {
			continue
		}
		quad[n] = c.classSum[p*c.samples+base : p*c.samples+base+w]
		coef[n] = c.table[p*c.nHyp+k]
		n++
		if n == 4 {
			flush()
		}
	}
	flush()
}

// Corr returns the correlation of hypothesis k at sample s.
func (c *ClassCPA) Corr(k, s int) float64 {
	if c.count < 2 {
		return 0
	}
	d := c.derive()
	n := float64(c.count)
	num := n*d.sumHT[k*c.samples+s] - d.sumH[k]*c.sumT[s]
	dh := n*d.sumHH[k] - d.sumH[k]*d.sumH[k]
	dt := n*c.sumTT[s] - c.sumT[s]*c.sumT[s]
	den := math.Sqrt(dh) * math.Sqrt(dt)
	if den == 0 || math.IsNaN(den) {
		return 0
	}
	return num / den
}

// CorrTrace returns the correlation-vs-time curve of hypothesis k.
func (c *ClassCPA) CorrTrace(k int) []float64 {
	out := make([]float64, c.samples)
	for s := range out {
		out[s] = c.Corr(k, s)
	}
	return out
}

// Peak returns the maximum absolute correlation of hypothesis k and the
// sample where it occurs.
func (c *ClassCPA) Peak(k int) (corr float64, sample int) {
	best, idx := 0.0, 0
	for s := 0; s < c.samples; s++ {
		r := c.Corr(k, s)
		if math.Abs(r) > math.Abs(best) {
			best, idx = r, s
		}
	}
	return best, idx
}

// PeakIn returns hypothesis k's peak correlation within the sample
// window [lo,hi). Out-of-range bounds clamp to the trace; when signed
// is set the peak is the maximum signed correlation rather than the
// maximum magnitude.
func (c *ClassCPA) PeakIn(k, lo, hi int, signed bool) (corr float64, sample int) {
	if lo < 0 {
		lo = 0
	}
	if hi <= lo || hi > c.samples {
		hi = c.samples
	}
	best, idx, have := 0.0, lo, false
	for s := lo; s < hi; s++ {
		r := c.Corr(k, s)
		better := math.Abs(r) > math.Abs(best)
		if signed {
			better = r > best
		}
		if !have || better {
			best, idx, have = r, s, true
		}
	}
	return best, idx
}

// ResultIn computes the attack summary restricted to the sample window
// [lo,hi), ranking hypotheses by signed correlation when signed is set.
// Windowing confines the peak search to where the attacked operation
// actually executes, suppressing deterministic ghost peaks from other
// cipher operations; signed ranking resolves the exact complement
// ambiguity of XOR-Hamming-weight models, where hypothesis k^0xff
// predicts the precise negation of hypothesis k and |r| alone cannot
// separate the two. Result is the (whole-trace, magnitude) special
// case.
func (c *ClassCPA) ResultIn(lo, hi int, signed bool) *Attack {
	a := &Attack{
		Peaks:       make([]float64, c.nHyp),
		PeakSamples: make([]int, c.nHyp),
		Ranking:     make([]int, c.nHyp),
		Traces:      c.count,
	}
	for k := 0; k < c.nHyp; k++ {
		r, s := c.PeakIn(k, lo, hi, signed)
		a.Peaks[k] = r
		a.PeakSamples[k] = s
		a.Ranking[k] = k
	}
	key := func(r float64) float64 {
		if signed {
			return r
		}
		return math.Abs(r)
	}
	for i := 1; i < len(a.Ranking); i++ {
		for j := i; j > 0; j-- {
			x, y := a.Ranking[j-1], a.Ranking[j]
			if key(a.Peaks[y]) > key(a.Peaks[x]) {
				a.Ranking[j-1], a.Ranking[j] = y, x
			} else {
				break
			}
		}
	}
	return a
}

// Result computes the attack summary, exactly as CPA.Result does over
// the derived sums.
func (c *ClassCPA) Result() *Attack {
	a := &Attack{
		Peaks:       make([]float64, c.nHyp),
		PeakSamples: make([]int, c.nHyp),
		Ranking:     make([]int, c.nHyp),
		Traces:      c.count,
	}
	for k := 0; k < c.nHyp; k++ {
		r, s := c.Peak(k)
		a.Peaks[k] = r
		a.PeakSamples[k] = s
		a.Ranking[k] = k
	}
	for i := 1; i < len(a.Ranking); i++ {
		for j := i; j > 0; j-- {
			x, y := a.Ranking[j-1], a.Ranking[j]
			if math.Abs(a.Peaks[y]) > math.Abs(a.Peaks[x]) {
				a.Ranking[j-1], a.Ranking[j] = y, x
			} else {
				break
			}
		}
	}
	return a
}

// Equal reports bit-identical accumulator state — the strict
// equivalence the engine's determinism tests assert. Derived caches are
// not state.
func (c *ClassCPA) Equal(o *ClassCPA) bool {
	if c.classes != o.classes || c.nHyp != o.nHyp || c.samples != o.samples || c.count != o.count {
		return false
	}
	for p := range c.classN {
		if c.classN[p] != o.classN[p] {
			return false
		}
	}
	eq := func(a, b []float64) bool {
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				return false
			}
		}
		return true
	}
	return eq(c.table, o.table) && eq(c.classSum, o.classSum) &&
		eq(c.sumT, o.sumT) && eq(c.sumTT, o.sumTT)
}

// Clone returns an independent deep copy of the accumulator state. The
// hypothesis table — immutable after construction — is shared, not
// copied.
func (c *ClassCPA) Clone() *ClassCPA {
	o := &ClassCPA{
		classes:  c.classes,
		nHyp:     c.nHyp,
		samples:  c.samples,
		count:    c.count,
		table:    c.table,
		classN:   append([]int64(nil), c.classN...),
		classSum: append([]float64(nil), c.classSum...),
		sumT:     append([]float64(nil), c.sumT...),
		sumTT:    append([]float64(nil), c.sumTT...),
	}
	return o
}

// Reset clears the accumulated state, keeping the table.
func (c *ClassCPA) Reset() {
	clear(c.classN)
	clear(c.classSum)
	clear(c.sumT)
	clear(c.sumTT)
	c.count = 0
	c.derived = nil
}
