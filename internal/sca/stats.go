// Package sca provides the side-channel analysis toolkit used to evaluate
// the simulated target: Pearson-correlation CPA (the distinguisher the
// paper justifies via [9]), statistical confidence tests for declaring a
// leak (Fisher z-transform, the ">99.5% confidence" criterion of §4), a
// Welch t-test for fixed-vs-random leakage assessment, and key-ranking
// utilities.
package sca

import (
	"errors"
	"math"
	"math/bits"
)

// HW returns the Hamming weight of v, the paper's baseline power model
// for intermediate values.
func HW(v uint32) int { return bits.OnesCount32(v) }

// HD returns the Hamming distance between a and b, the transition model
// for buses and registers.
func HD(a, b uint32) int { return bits.OnesCount32(a ^ b) }

// HW8 returns the Hamming weight of a byte.
func HW8(v uint8) int { return bits.OnesCount8(v) }

// HD8 returns the Hamming distance between two bytes.
func HD8(a, b uint8) int { return bits.OnesCount8(a ^ b) }

// Pearson returns the sample correlation coefficient of x and y.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("sca: length mismatch")
	}
	if len(x) < 2 {
		return 0, errors.New("sca: need at least two points")
	}
	n := float64(len(x))
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	num := n*sxy - sx*sy
	den := math.Sqrt(n*sxx-sx*sx) * math.Sqrt(n*syy-sy*sy)
	if den == 0 {
		return 0, nil
	}
	return num / den, nil
}

// erf is math.Erf; aliased for readability in the confidence formulas.
func erf(x float64) float64 { return math.Erf(x) }

// normalCDF is the standard normal cumulative distribution function.
func normalCDF(z float64) float64 { return 0.5 * (1 + erf(z/math.Sqrt2)) }

// FisherZ applies the variance-stabilizing transform atanh(r).
func FisherZ(r float64) float64 {
	switch {
	case r >= 1:
		return math.Inf(1)
	case r <= -1:
		return math.Inf(-1)
	}
	return math.Atanh(r)
}

// CorrConfidence returns the two-sided confidence with which a sample
// correlation r over n traces is distinguishable from zero: the Fisher
// statistic z = atanh(r)·sqrt(n-3) is standard normal under the null
// hypothesis of no correlation.
func CorrConfidence(r float64, n int) float64 {
	if n <= 3 {
		return 0
	}
	z := math.Abs(FisherZ(r)) * math.Sqrt(float64(n-3))
	return 2*normalCDF(z) - 1
}

// SignificantAt reports whether correlation r over n traces is
// distinguishable from zero with at least the given confidence
// (e.g. 0.995 for the paper's §4 criterion).
func SignificantAt(r float64, n int, confidence float64) bool {
	return CorrConfidence(r, n) > confidence
}

// CorrDifferenceConfidence returns the confidence with which two
// correlations measured over n traces each differ, via the Fisher
// z difference test. It is the paper's §5 criterion for declaring the
// correct key distinguishable from the best wrong guess (>99%).
func CorrDifferenceConfidence(r1, r2 float64, n int) float64 {
	if n <= 3 {
		return 0
	}
	z := (FisherZ(r1) - FisherZ(r2)) / math.Sqrt(2/float64(n-3))
	return 2*normalCDF(math.Abs(z)) - 1
}

// WelchT computes Welch's t statistic between two sample groups described
// by their count, mean and variance. It is the TVLA-style leakage
// assessment statistic, included as an extension to the paper's CPA
// methodology.
func WelchT(n1 int, mean1, var1 float64, n2 int, mean2, var2 float64) float64 {
	if n1 < 2 || n2 < 2 {
		return 0
	}
	den := math.Sqrt(var1/float64(n1) + var2/float64(n2))
	if den == 0 {
		return 0
	}
	return (mean1 - mean2) / den
}

// Welch accumulates the two-group statistics for a t-test over traces.
type Welch struct {
	n      [2]int
	mean   [2][]float64
	m2     [2][]float64
	points int
}

// NewWelch returns a Welch accumulator over traces of the given length.
func NewWelch(samples int) *Welch {
	w := &Welch{points: samples}
	for g := 0; g < 2; g++ {
		w.mean[g] = make([]float64, samples)
		w.m2[g] = make([]float64, samples)
	}
	return w
}

// Add accumulates one trace into group g (0 or 1) using Welford's online
// algorithm.
func (w *Welch) Add(g int, t []float64) error {
	if g != 0 && g != 1 {
		return errors.New("sca: group must be 0 or 1")
	}
	if len(t) != w.points {
		return errors.New("sca: trace length mismatch")
	}
	w.n[g]++
	n := float64(w.n[g])
	for i, v := range t {
		d := v - w.mean[g][i]
		w.mean[g][i] += d / n
		w.m2[g][i] += d * (v - w.mean[g][i])
	}
	return nil
}

// T returns the per-sample Welch t statistics.
func (w *Welch) T() []float64 {
	out := make([]float64, w.points)
	for i := range out {
		var v [2]float64
		for g := 0; g < 2; g++ {
			if w.n[g] > 1 {
				v[g] = w.m2[g][i] / float64(w.n[g]-1)
			}
		}
		out[i] = WelchT(w.n[0], w.mean[0][i], v[0], w.n[1], w.mean[1][i], v[1])
	}
	return out
}

// MaxAbs returns the maximum absolute value in xs and its index.
func MaxAbs(xs []float64) (float64, int) {
	best, idx := 0.0, -1
	for i, v := range xs {
		if a := math.Abs(v); a > best {
			best, idx = a, i
		}
	}
	return best, idx
}
