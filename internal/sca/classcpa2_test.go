package sca

import (
	"math"
	"math/rand"
	"testing"
)

// order2Fixture builds a random (classes, traces) workload whose traces
// carry a genuine second-order signal: two samples hold the two shares
// of a masked value, so neither correlates alone but their centered
// product does.
func order2Fixture(t *testing.T, traces, samples int, seed int64) (table [][]float64, classes []int, raws [][]float64, means []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const nClass, nHyp, key = 16, 16, 11
	table = make([][]float64, nClass)
	for p := range table {
		table[p] = make([]float64, nHyp)
		for k := range table[p] {
			table[p][k] = float64(HW8(byte((p ^ k) * 157)))
		}
	}
	classes = make([]int, traces)
	raws = make([][]float64, traces)
	sums := make([]float64, samples)
	for i := range raws {
		p := rng.Intn(nClass)
		classes[i] = p
		v := byte((p ^ key) * 157)
		m := byte(rng.Intn(256))
		tr := make([]float64, samples)
		for s := range tr {
			tr[s] = rng.NormFloat64()
		}
		tr[1] += float64(HW8(m))
		tr[3] += float64(HW8(v ^ m))
		raws[i] = tr
		for s, x := range tr {
			sums[s] += x
		}
	}
	means = make([]float64, samples)
	for s := range means {
		means[s] = sums[s] / float64(traces)
	}
	return table, classes, raws, means
}

func TestClassCPA2BatchMatchesSerial(t *testing.T) {
	table, classes, raws, means := order2Fixture(t, 300, 8, 41)
	serial := MustNewClassCPA2(8, table, means, 0, 0)
	for i, tr := range raws {
		if err := serial.Add(classes[i], tr); err != nil {
			t.Fatal(err)
		}
	}
	for _, chunk := range []int{1, 7, 64, 300} {
		batch := MustNewClassCPA2(8, table, means, 0, 0)
		for lo := 0; lo < len(raws); lo += chunk {
			hi := min(lo+chunk, len(raws))
			if err := batch.AddBatch(classes[lo:hi], raws[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		if !batch.Equal(serial) {
			t.Fatalf("chunk %d: AddBatch state differs from serial Add reference", chunk)
		}
	}
}

// The second-order correlation must match a brute-force first-order CPA
// run over the pre-combined traces: ClassCPA2 is definitionally that.
func TestClassCPA2MatchesCombinedReference(t *testing.T) {
	table, classes, raws, means := order2Fixture(t, 250, 6, 43)
	c2 := MustNewClassCPA2(6, table, means, 1, 5)
	ref := MustNewClassCPA(Order2Pairs(1, 5), table)
	comb := make([]float64, Order2Pairs(1, 5))
	for i, tr := range raws {
		if err := c2.Add(classes[i], tr); err != nil {
			t.Fatal(err)
		}
		k := 0
		for a := 1; a < 5; a++ {
			for b := a; b < 5; b++ {
				comb[k] = (tr[a] - means[a]) * (tr[b] - means[b])
				k++
			}
		}
		if err := ref.Add(classes[i], comb); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < c2.Hypotheses(); k++ {
		for s := 0; s < c2.Pairs(); s++ {
			if math.Float64bits(c2.Corr(k, s)) != math.Float64bits(ref.Corr(k, s)) {
				t.Fatalf("corr(%d,%d) differs from combined-trace reference", k, s)
			}
		}
	}
}

// The masked two-share fixture must be invisible to first-order CPA but
// recovered by the second-order combiner — the defining property.
func TestClassCPA2RecoversMaskedKey(t *testing.T) {
	table, classes, raws, means := order2Fixture(t, 4000, 8, 47)
	const key = 11
	c1 := MustNewClassCPA(8, table)
	c2 := MustNewClassCPA2(8, table, means, 0, 0)
	for i, tr := range raws {
		if err := c1.Add(classes[i], tr); err != nil {
			t.Fatal(err)
		}
		if err := c2.Add(classes[i], tr); err != nil {
			t.Fatal(err)
		}
	}
	if r1 := c1.Result(); r1.RankOf(key) == 0 {
		t.Errorf("first-order CPA recovered the masked key (peak %.3f) — fixture broken", r1.Peaks[key])
	}
	r2 := c2.Result()
	if r2.RankOf(key) != 0 {
		best, _ := r2.Best()
		t.Errorf("second-order CPA rank of true key = %d (best hyp %d)", r2.RankOf(key), best)
	}
	// The peak must sit on the (share0, share1) cross product.
	_, s := c2.Peak(key)
	if i, j := c2.PairOf(s); i != 1 || j != 3 {
		t.Errorf("peak at pair (%d,%d), want (1,3)", i, j)
	}
}

func TestClassCPA2PairOfRoundTrip(t *testing.T) {
	table := [][]float64{{0, 1}, {1, 0}}
	means := make([]float64, 9)
	c := MustNewClassCPA2(9, table, means, 2, 7)
	k := 0
	for i := 2; i < 7; i++ {
		for j := i; j < 7; j++ {
			gi, gj := c.PairOf(k)
			if gi != i || gj != j {
				t.Fatalf("PairOf(%d) = (%d,%d), want (%d,%d)", k, gi, gj, i, j)
			}
			k++
		}
	}
	if k != c.Pairs() {
		t.Fatalf("pair count %d, want %d", c.Pairs(), k)
	}
	if i, j := c.PairOf(-1); i != -1 || j != -1 {
		t.Error("negative index must map to (-1,-1)")
	}
	if i, j := c.PairOf(c.Pairs()); i != -1 || j != -1 {
		t.Error("out-of-range index must map to (-1,-1)")
	}
}

func TestClassCPA2Validation(t *testing.T) {
	table := [][]float64{{0, 1}, {1, 0}}
	means := make([]float64, 4)
	if _, err := NewClassCPA2(0, table, nil, 0, 0); err == nil {
		t.Error("zero samples must be rejected")
	}
	if _, err := NewClassCPA2(4, table, means[:2], 0, 0); err == nil {
		t.Error("short centering vector must be rejected")
	}
	if _, err := NewClassCPA2(4, table, means, 3, 2); err == nil {
		t.Error("inverted window must be rejected")
	}
	if _, err := NewClassCPA2(4, table, means, 0, 5); err == nil {
		t.Error("window past the trace must be rejected")
	}
	c := MustNewClassCPA2(4, table, means, 0, 0)
	if err := c.Add(0, make([]float64, 3)); err == nil {
		t.Error("short trace must be rejected")
	}
	if err := c.Add(5, make([]float64, 4)); err == nil {
		t.Error("bad class must be rejected")
	}
	if err := c.AddBatch([]int{0}, [][]float64{{1, 2}}); err == nil {
		t.Error("short batch trace must be rejected")
	}
	if err := c.AddBatch([]int{9}, [][]float64{{1, 2, 3, 4}}); err == nil {
		t.Error("bad batch class must be rejected")
	}
	if err := c.AddBatch([]int{0, 1}, [][]float64{{1, 2, 3, 4}}); err == nil {
		t.Error("length mismatch must be rejected")
	}
	if c.Count() != 0 {
		t.Error("failed batch must not accumulate")
	}
}

func TestClassCPA2CloneResetEqual(t *testing.T) {
	table, classes, raws, means := order2Fixture(t, 60, 5, 53)
	a := MustNewClassCPA2(5, table, means, 0, 0)
	for i, tr := range raws {
		if err := a.Add(classes[i], tr); err != nil {
			t.Fatal(err)
		}
	}
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone must equal original")
	}
	if err := b.Add(classes[0], raws[0]); err != nil {
		t.Fatal(err)
	}
	if a.Equal(b) {
		t.Fatal("diverged clone must not equal original")
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatal("reset must clear the count")
	}
	other := MustNewClassCPA2(5, table, means, 1, 4)
	if a.Equal(other) {
		t.Fatal("different windows must not compare equal")
	}
}
