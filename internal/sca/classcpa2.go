package sca

import (
	"fmt"
	"math"
)

var _ Accumulator = (*ClassCPA2)(nil)

// ClassCPA2 is a second-order conditional-sum CPA engine: it attacks a
// first-order masked implementation by combining pairs of trace points
// with centered products before accumulation. For every unordered pair
// (i, j) with lo <= i <= j < hi the combined sample is
//
//	c_ij = (t[i] − μ[i]) · (t[j] − μ[j])
//
// where μ is a fixed centering vector (the mean trace of a first pass
// over the same trace sequence). The combined trace then feeds an
// ordinary ClassCPA over the pair space, so all of the conditional-sum
// machinery — class bucketing, derived Pearson sums, the pinned
// vector kernels — is reused unchanged. Including the diagonal (i == i)
// matters: a dual-issued share pair leaks both shares in the *same*
// cycle, where the second-order signal lives in the centered square
// (the variance of HW(s0)+HW(s1) is key-dependent), not in a cross
// product of two distinct cycles.
//
// Determinism contract. The centering vector is a constructor constant,
// so each combined trace is a pure function of its raw trace alone; the
// expansion loop visits pairs in fixed lexicographic order; and the
// inner ClassCPA receives combined traces in arrival order. Under the
// engine's ordered reduction, AddBatch is therefore bit-identical to
// per-trace Add calls in trace order for any worker count, chunk size
// or lane width — the same pin the first-order kernels carry.
type ClassCPA2 struct {
	inner      *ClassCPA
	rawSamples int
	lo, hi     int
	means      []float64
	comb       []float64 // pair-expansion scratch, reused across Adds
}

// Order2Pairs returns the combined-sample count of the window [lo, hi):
// all unordered pairs including the diagonal.
func Order2Pairs(lo, hi int) int {
	w := hi - lo
	return w * (w + 1) / 2
}

// NewClassCPA2 returns a second-order engine over raw traces of
// rawSamples points. table is the hypothesis table of the inner
// ClassCPA (table[p][k] = hypothesis k's prediction for class p), means
// the centering vector (length rawSamples), and [lo, hi) the combining
// window over raw sample indices; hi == 0 selects the full trace.
func NewClassCPA2(rawSamples int, table [][]float64, means []float64, lo, hi int) (*ClassCPA2, error) {
	if rawSamples < 1 {
		return nil, fmt.Errorf("sca: need at least 1 raw sample, got %d", rawSamples)
	}
	if len(means) != rawSamples {
		return nil, fmt.Errorf("sca: centering vector has %d samples, want %d", len(means), rawSamples)
	}
	if hi == 0 {
		hi = rawSamples
	}
	if lo < 0 || hi > rawSamples || lo >= hi {
		return nil, fmt.Errorf("sca: combining window [%d,%d) out of [0,%d)", lo, hi, rawSamples)
	}
	inner, err := NewClassCPA(Order2Pairs(lo, hi), table)
	if err != nil {
		return nil, err
	}
	c := &ClassCPA2{
		inner:      inner,
		rawSamples: rawSamples,
		lo:         lo,
		hi:         hi,
		means:      make([]float64, rawSamples),
		comb:       make([]float64, Order2Pairs(lo, hi)),
	}
	copy(c.means, means)
	return c, nil
}

// MustNewClassCPA2 is NewClassCPA2 that panics on bad arguments.
func MustNewClassCPA2(rawSamples int, table [][]float64, means []float64, lo, hi int) *ClassCPA2 {
	c, err := NewClassCPA2(rawSamples, table, means, lo, hi)
	if err != nil {
		panic(err)
	}
	return c
}

// RawSamples returns the raw trace length the engine accepts.
func (c *ClassCPA2) RawSamples() int { return c.rawSamples }

// Window returns the combining window [lo, hi) over raw samples.
func (c *ClassCPA2) Window() (lo, hi int) { return c.lo, c.hi }

// Pairs returns the combined-sample count.
func (c *ClassCPA2) Pairs() int { return c.inner.samples }

// PairOf maps a combined sample index back to its raw index pair
// (i <= j), inverting the lexicographic expansion order.
func (c *ClassCPA2) PairOf(s int) (i, j int) {
	if s < 0 || s >= c.inner.samples {
		return -1, -1
	}
	for i = c.lo; i < c.hi; i++ {
		row := c.hi - i // pairs (i,i)..(i,hi-1)
		if s < row {
			return i, i + s
		}
		s -= row
	}
	return -1, -1
}

// Classes returns the model-input class count.
func (c *ClassCPA2) Classes() int { return c.inner.classes }

// Hypotheses returns the hypothesis count.
func (c *ClassCPA2) Hypotheses() int { return c.inner.nHyp }

// Count returns the number of accumulated traces.
func (c *ClassCPA2) Count() int { return c.inner.count }

// combineInto expands the centered products of t's window into dst in
// lexicographic pair order. The expansion is a pure per-trace function
// — no accumulator state is read — so it commutes with any scheduling.
func (c *ClassCPA2) combineInto(dst, t []float64) {
	k := 0
	for i := c.lo; i < c.hi; i++ {
		ci := t[i] - c.means[i]
		for j := i; j < c.hi; j++ {
			dst[k] = ci * (t[j] - c.means[j])
			k++
		}
	}
}

// Add accumulates one raw trace under its model-input class. The same
// (class, trace) sequence always leaves bit-identical state.
func (c *ClassCPA2) Add(class int, t []float64) error {
	if len(t) != c.rawSamples {
		return fmt.Errorf("sca: trace has %d samples, want %d", len(t), c.rawSamples)
	}
	c.combineInto(c.comb, t)
	return c.inner.Add(class, c.comb)
}

// AddBatch accumulates a batch of raw traces under their classes. It is
// bit-identical to calling Add(classes[i], traces[i]) in ascending i:
// each combined trace is expanded by the same pure per-trace function
// and handed to the inner ClassCPA's batch path, which is itself pinned
// to its serial reference. Like the other batch kernels it validates
// the whole batch before touching any state.
func (c *ClassCPA2) AddBatch(classes []int, traces [][]float64) error {
	if len(classes) != len(traces) {
		return fmt.Errorf("sca: batch of %d traces with %d classes", len(traces), len(classes))
	}
	for i, t := range traces {
		if len(t) != c.rawSamples {
			return fmt.Errorf("sca: trace %d of batch has %d samples, want %d", i, len(t), c.rawSamples)
		}
		if classes[i] < 0 || classes[i] >= c.inner.classes {
			return fmt.Errorf("sca: trace %d of batch has class %d out of [0,%d)", i, classes[i], c.inner.classes)
		}
	}
	for i, t := range traces {
		c.combineInto(c.comb, t)
		if err := c.inner.Add(classes[i], c.comb); err != nil {
			return err
		}
	}
	return nil
}

// Reset clears the accumulator for reuse; the centering vector and
// window are retained.
func (c *ClassCPA2) Reset() { c.inner.Reset() }

// Clone returns an independent deep copy of the accumulator state.
func (c *ClassCPA2) Clone() *ClassCPA2 {
	o := &ClassCPA2{
		inner:      c.inner.Clone(),
		rawSamples: c.rawSamples,
		lo:         c.lo,
		hi:         c.hi,
		means:      make([]float64, len(c.means)),
		comb:       make([]float64, len(c.comb)),
	}
	copy(o.means, c.means)
	return o
}

// Equal reports whether two accumulators hold bit-identical state —
// the strict equivalence the determinism tests assert.
func (c *ClassCPA2) Equal(o *ClassCPA2) bool {
	if c.rawSamples != o.rawSamples || c.lo != o.lo || c.hi != o.hi {
		return false
	}
	for i := range c.means {
		if math.Float64bits(c.means[i]) != math.Float64bits(o.means[i]) {
			return false
		}
	}
	return c.inner.Equal(o.inner)
}

// Corr returns the correlation of hypothesis k at combined sample s.
func (c *ClassCPA2) Corr(k, s int) float64 { return c.inner.Corr(k, s) }

// CorrTrace returns hypothesis k's correlation curve over the combined
// pair space (index via PairOf).
func (c *ClassCPA2) CorrTrace(k int) []float64 { return c.inner.CorrTrace(k) }

// Peak returns hypothesis k's maximum absolute correlation over all
// pairs and the combined sample index where it occurs.
func (c *ClassCPA2) Peak(k int) (corr float64, sample int) { return c.inner.Peak(k) }

// Result computes the ranking summary over all hypotheses.
func (c *ClassCPA2) Result() *Attack { return c.inner.Result() }
