package sca

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHWHD8(t *testing.T) {
	if HW8(0xFF) != 8 || HW8(0) != 0 || HW8(0x0F) != 4 {
		t.Error("HW8 broken")
	}
	if HD8(0xFF, 0x0F) != 4 || HD8(7, 7) != 0 {
		t.Error("HD8 broken")
	}
	if HW(0xFFFFFFFF) != 32 || HD(1, 2) != 2 {
		t.Error("HW/HD broken")
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("r = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(x, neg)
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("r = %v, want -1", r)
	}
}

func TestPearsonUncorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 10000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.05 {
		t.Errorf("independent samples correlate at %v", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("single point must error")
	}
	// Constant input has zero variance: r = 0, no error.
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil || r != 0 {
		t.Errorf("constant input: r=%v err=%v", r, err)
	}
}

// Property: Pearson is symmetric and invariant under affine maps with
// positive scale.
func TestPearsonInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = 0.5*x[i] + rng.NormFloat64()
		}
		r1, _ := Pearson(x, y)
		r2, _ := Pearson(y, x)
		x2 := make([]float64, n)
		for i := range x {
			x2[i] = 3*x[i] + 11
		}
		r3, _ := Pearson(x2, y)
		return math.Abs(r1-r2) < 1e-9 && math.Abs(r1-r3) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFisherZ(t *testing.T) {
	if FisherZ(0) != 0 {
		t.Error("FisherZ(0) must be 0")
	}
	if !math.IsInf(FisherZ(1), 1) || !math.IsInf(FisherZ(-1), -1) {
		t.Error("FisherZ must saturate at ±1")
	}
	if math.Abs(FisherZ(0.5)-0.5493061443) > 1e-9 {
		t.Errorf("FisherZ(0.5) = %v", FisherZ(0.5))
	}
}

func TestCorrConfidenceGrowsWithNAndR(t *testing.T) {
	if CorrConfidence(0.1, 100) >= CorrConfidence(0.1, 10000) {
		t.Error("confidence must grow with trace count")
	}
	if CorrConfidence(0.05, 1000) >= CorrConfidence(0.5, 1000) {
		t.Error("confidence must grow with correlation")
	}
	if CorrConfidence(0.9, 3) != 0 {
		t.Error("n <= 3 must yield zero confidence")
	}
}

func TestSignificantAtPaperCriterion(t *testing.T) {
	// |r| = 0.05 over 100k traces is overwhelmingly significant; the same
	// r over 100 traces is not. This is the >99.5% criterion of §4.
	if !SignificantAt(0.05, 100000, 0.995) {
		t.Error("r=0.05 over 100k traces must pass 99.5%")
	}
	if SignificantAt(0.05, 100, 0.995) {
		t.Error("r=0.05 over 100 traces must not pass 99.5%")
	}
}

func TestCorrDifferenceConfidence(t *testing.T) {
	if CorrDifferenceConfidence(0.5, 0.1, 1000) < 0.99 {
		t.Error("widely separated correlations must be distinguishable")
	}
	if CorrDifferenceConfidence(0.30, 0.29, 100) > 0.5 {
		t.Error("near-equal correlations over few traces must not distinguish")
	}
	if CorrDifferenceConfidence(0.5, 0.1, 3) != 0 {
		t.Error("n <= 3 must yield zero")
	}
}

func TestWelchTDetectsMeanShift(t *testing.T) {
	w := NewWelch(2)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		a := []float64{rng.NormFloat64(), rng.NormFloat64()}
		b := []float64{rng.NormFloat64() + 1, rng.NormFloat64()}
		if err := w.Add(0, a); err != nil {
			t.Fatal(err)
		}
		if err := w.Add(1, b); err != nil {
			t.Fatal(err)
		}
	}
	ts := w.T()
	if math.Abs(ts[0]) < 4.5 {
		t.Errorf("t[0] = %v, want |t| > 4.5 (TVLA threshold)", ts[0])
	}
	if math.Abs(ts[1]) > 4.5 {
		t.Errorf("t[1] = %v, want below threshold", ts[1])
	}
}

func TestWelchAddErrors(t *testing.T) {
	w := NewWelch(2)
	if err := w.Add(2, []float64{1, 2}); err == nil {
		t.Error("bad group must error")
	}
	if err := w.Add(0, []float64{1}); err == nil {
		t.Error("bad length must error")
	}
}

func TestMaxAbs(t *testing.T) {
	v, i := MaxAbs([]float64{0.1, -0.9, 0.5})
	if v != 0.9 || i != 1 {
		t.Errorf("MaxAbs = %v @ %d", v, i)
	}
	if _, i := MaxAbs(nil); i != -1 {
		t.Error("empty MaxAbs must return -1")
	}
}

func TestCPARecoversLinearLeakage(t *testing.T) {
	// Synthetic experiment: traces leak HW(S[value ^ key]) at sample 3;
	// CPA over 16 hypotheses must rank the true key first. The nonlinear
	// S-box breaks the HW(x) = 4 - HW(x ^ 0xF) anti-symmetry that would
	// otherwise make key k and k^0xF indistinguishable by |r|.
	sbox := [16]uint8{0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2}
	const trueKey = 11
	const nHyp = 16
	const samples = 8
	rng := rand.New(rand.NewSource(1234))
	cpa := MustNewCPA(nHyp, samples)
	for i := 0; i < 3000; i++ {
		d := uint8(rng.Intn(16))
		tr := make([]float64, samples)
		for s := range tr {
			tr[s] = rng.NormFloat64()
		}
		tr[3] += float64(HW8(sbox[(d^trueKey)&0xF]))
		hyp := make([]float64, nHyp)
		for k := range hyp {
			hyp[k] = float64(HW8(sbox[(d^uint8(k))&0xF]))
		}
		if err := cpa.Add(tr, hyp); err != nil {
			t.Fatal(err)
		}
	}
	a := cpa.Result()
	best, corr := a.Best()
	if best != trueKey {
		t.Fatalf("recovered key %d, want %d (corr %v)", best, trueKey, corr)
	}
	if _, s := cpa.Peak(trueKey); s != 3 {
		t.Errorf("peak at sample %d, want 3", s)
	}
	if a.RankOf(trueKey) != 0 {
		t.Error("true key must rank first")
	}
	if a.DistinguishConfidence() < 0.99 {
		t.Errorf("distinguish confidence %v, want > 0.99", a.DistinguishConfidence())
	}
}

func TestCPARejectsWrongDimensions(t *testing.T) {
	cpa := MustNewCPA(4, 2)
	if err := cpa.Add([]float64{1}, []float64{1, 2, 3, 4}); err == nil {
		t.Error("short trace must error")
	}
	if err := cpa.Add([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("short hypothesis vector must error")
	}
	if _, err := NewCPA(1, 4); err == nil {
		t.Error("single hypothesis must error")
	}
	if _, err := NewCPA(4, 0); err == nil {
		t.Error("zero samples must error")
	}
}

func TestCPACorrTraceMatchesPearson(t *testing.T) {
	// The incremental computation must agree with a direct Pearson.
	rng := rand.New(rand.NewSource(5))
	const n = 500
	cpa := MustNewCPA(2, 1)
	var xs, ys []float64
	for i := 0; i < n; i++ {
		h := float64(rng.Intn(9))
		v := 2*h + rng.NormFloat64()
		xs = append(xs, h)
		ys = append(ys, v)
		if err := cpa.Add([]float64{v}, []float64{h, -h}); err != nil {
			t.Fatal(err)
		}
	}
	want, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if got := cpa.Corr(0, 0); math.Abs(got-want) > 1e-9 {
		t.Errorf("incremental r = %v, direct r = %v", got, want)
	}
	if got := cpa.Corr(1, 0); math.Abs(got+want) > 1e-9 {
		t.Errorf("negated hypothesis r = %v, want %v", got, -want)
	}
}

func TestCPAZeroVariance(t *testing.T) {
	cpa := MustNewCPA(2, 1)
	for i := 0; i < 10; i++ {
		if err := cpa.Add([]float64{5}, []float64{1, float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := cpa.Corr(0, 0); got != 0 {
		t.Errorf("constant data must yield r = 0, got %v", got)
	}
}

func TestAttackMarginOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cpa := MustNewCPA(3, 1)
	for i := 0; i < 400; i++ {
		h := float64(rng.Intn(5))
		v := h + 0.1*rng.NormFloat64()
		if err := cpa.Add([]float64{v}, []float64{h, -h, rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	a := cpa.Result()
	best, second := a.Margin()
	if best < second {
		t.Errorf("margin ordering broken: %v < %v", best, second)
	}
	// Hypotheses 0 and 1 (perfectly ±correlated) must outrank hypothesis 2.
	if a.RankOf(2) != 2 {
		t.Errorf("noise hypothesis ranked %d, want 2", a.RankOf(2))
	}
}
