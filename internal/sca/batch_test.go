package sca

import (
	"math"
	"math/rand"
	"testing"
)

// TestAddBatchBitIdenticalToAdd pins the cache-blocked batch path to
// the serial reference: same traces in the same order must leave every
// accumulator word bit-identical, for assorted batch shapes including
// empty and single-trace batches.
func TestAddBatchBitIdenticalToAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for _, shape := range []struct{ nHyp, samples, batch int }{
		{2, 1, 1},
		{7, 13, 5},
		{16, 33, 8},
		{256, 41, 3},
		{9, 100, 64},
		{5, 6, 0},
	} {
		a := MustNewCPA(shape.nHyp, shape.samples)
		b := MustNewCPA(shape.nHyp, shape.samples)
		traces := make([][]float64, shape.batch)
		hyps := make([][]float64, shape.batch)
		for i := range traces {
			traces[i] = make([]float64, shape.samples)
			hyps[i] = make([]float64, shape.nHyp)
			for s := range traces[i] {
				traces[i][s] = rng.NormFloat64() * 100
			}
			for k := range hyps[i] {
				hyps[i][k] = float64(rng.Intn(9))
			}
		}
		for i := range traces {
			if err := a.Add(traces[i], hyps[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.AddBatch(traces, hyps); err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("shape %+v: AddBatch diverges from serial Add", shape)
		}
	}
}

// TestAddBatchAfterAddInterleaved checks that batches compose with
// single adds: (Add, AddBatch, Add) equals the flat Add sequence.
func TestAddBatchAfterAddInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func() ([]float64, []float64) {
		tr := make([]float64, 17)
		hy := make([]float64, 6)
		for i := range tr {
			tr[i] = rng.NormFloat64()
		}
		for i := range hy {
			hy[i] = rng.Float64()
		}
		return tr, hy
	}
	var traces [][]float64
	var hyps [][]float64
	for i := 0; i < 9; i++ {
		tr, hy := mk()
		traces = append(traces, tr)
		hyps = append(hyps, hy)
	}
	a := MustNewCPA(6, 17)
	for i := range traces {
		if err := a.Add(traces[i], hyps[i]); err != nil {
			t.Fatal(err)
		}
	}
	b := MustNewCPA(6, 17)
	if err := b.Add(traces[0], hyps[0]); err != nil {
		t.Fatal(err)
	}
	if err := b.AddBatch(traces[1:8], hyps[1:8]); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(traces[8], hyps[8]); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("interleaved AddBatch diverges from serial Add")
	}
	if b.Count() != 9 {
		t.Fatalf("count %d, want 9", b.Count())
	}
}

// TestAddBatchValidation rejects ragged batches up front, leaving the
// accumulator untouched.
func TestAddBatchValidation(t *testing.T) {
	c := MustNewCPA(4, 8)
	good := [][]float64{make([]float64, 8)}
	if err := c.AddBatch(good, [][]float64{make([]float64, 3)}); err == nil {
		t.Error("short hypothesis vector accepted")
	}
	if err := c.AddBatch([][]float64{make([]float64, 7)}, [][]float64{make([]float64, 4)}); err == nil {
		t.Error("short trace accepted")
	}
	if err := c.AddBatch(good, nil); err == nil {
		t.Error("mismatched batch lengths accepted")
	}
	if c.Count() != 0 {
		t.Errorf("failed batches accumulated %d traces", c.Count())
	}
	if got := c.Corr(0, 0); !math.IsNaN(got) && got != 0 {
		t.Errorf("accumulator disturbed: corr %v", got)
	}
}
