//go:build !amd64

package sca

// hasAVX512 exists for the shared path-selection logic; no EVEX kernels
// off amd64.
var hasAVX512 = false

// scaleInto writes dst[j] = a * x[j]; the portable kernel is the only
// implementation on this architecture.
func scaleInto(dst, x []float64, a float64) { scaleGeneric(dst, x, a) }

// vaddInto accumulates dst[j] += x[j].
func vaddInto(dst, x []float64) { vaddGeneric(dst, x) }

// sumSqInto accumulates a trace into the Σt and Σt² rows.
func sumSqInto(sumT, sumTT, x []float64) { sumSqGeneric(sumT, sumTT, x) }

// classAddInto fuses a trace's Σt, Σt² and class-sum accumulation.
func classAddInto(sumT, sumTT, cls, x []float64) { classAddGeneric(sumT, sumTT, cls, x) }

// gaddInto accumulates the product rows named by offs into dst in
// offset order.
func gaddInto(dst, prod []float64, offs []uint32) { gaddGeneric(dst, prod, offs) }
