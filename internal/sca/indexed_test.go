package sca

import (
	"math"
	"math/rand"
	"testing"
)

// forceRowsPath runs f under every row-path selection, restoring the
// default afterwards.
func forceRowsPath(t *testing.T, f func(t *testing.T, path rowsPathKind)) {
	t.Helper()
	defer func() { rowsPath = rowsPathAuto }()
	for _, p := range []rowsPathKind{rowsPathIndexed, rowsPathAxpy} {
		rowsPath = p
		f(t, p)
	}
	rowsPath = rowsPathAuto
}

// smallAlphabetBatch builds a batch whose hypotheses are Hamming-weight
// shaped (9-value alphabet) — the attack workload the indexed path is
// built for.
func smallAlphabetBatch(rng *rand.Rand, nTraces, nHyp, samples int) (traces, hyps [][]float64) {
	traces = make([][]float64, nTraces)
	hyps = make([][]float64, nTraces)
	for i := range traces {
		traces[i] = make([]float64, samples)
		hyps[i] = make([]float64, nHyp)
		for s := range traces[i] {
			traces[i][s] = rng.NormFloat64() * 10
		}
		for k := range hyps[i] {
			hyps[i][k] = float64(rng.Intn(9))
		}
	}
	return traces, hyps
}

// TestAddBatchIndexedBitIdenticalToSerial pins the indexed row path to
// the serial Add reference across path forcings and batch shapes,
// including batches larger than the staging block and tiles narrower
// than the vector width.
func TestAddBatchIndexedBitIdenticalToSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	shapes := []struct{ nHyp, samples, batch int }{
		{2, 1, 1},
		{9, 5, 3},
		{256, 130, 7},
		{16, 257, indexedBlock + 5},
		{256, tileCap + 9, 64},
	}
	for _, shape := range shapes {
		traces, hyps := smallAlphabetBatch(rng, shape.batch, shape.nHyp, shape.samples)
		want := MustNewCPA(shape.nHyp, shape.samples)
		for i := range traces {
			if err := want.Add(traces[i], hyps[i]); err != nil {
				t.Fatal(err)
			}
		}
		forceRowsPath(t, func(t *testing.T, path rowsPathKind) {
			got := MustNewCPA(shape.nHyp, shape.samples)
			if err := got.AddBatch(traces, hyps); err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("shape %+v path %d: AddBatch diverges from serial Add", shape, path)
			}
		})
	}
}

// TestAddBatchWideAlphabetFallsBack feeds hypothesis vectors whose
// alphabet exceeds maxAlphabet (plus a NaN-bearing one): the indexed
// path must hand them to the axpy path and the result must still match
// the serial reference bit for bit.
func TestAddBatchWideAlphabetFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const nHyp, samples, batch = 96, 50, 6
	traces := make([][]float64, batch)
	hyps := make([][]float64, batch)
	for i := range traces {
		traces[i] = make([]float64, samples)
		hyps[i] = make([]float64, nHyp)
		for s := range traces[i] {
			traces[i][s] = rng.NormFloat64()
		}
		for k := range hyps[i] {
			hyps[i][k] = rng.NormFloat64() // effectively all-distinct
		}
	}
	hyps[2][5] = math.NaN()
	want := MustNewCPA(nHyp, samples)
	for i := range traces {
		if err := want.Add(traces[i], hyps[i]); err != nil {
			t.Fatal(err)
		}
	}
	forceRowsPath(t, func(t *testing.T, path rowsPathKind) {
		got := MustNewCPA(nHyp, samples)
		if err := got.AddBatch(traces, hyps); err != nil {
			t.Fatal(err)
		}
		if got.Count() != want.Count() {
			t.Fatalf("path %d: count %d, want %d", path, got.Count(), want.Count())
		}
		// NaN sums never compare equal; check bit patterns directly.
		for i := range want.sumHT {
			if math.Float64bits(got.sumHT[i]) != math.Float64bits(want.sumHT[i]) {
				t.Fatalf("path %d: sumHT[%d] %x, want %x", path, i, got.sumHT[i], want.sumHT[i])
			}
		}
	})
}

// TestKernelFallbacksBitIdentical is the CPU-feature fallback check:
// with the AVX/AVX-512 gates forced off, the portable kernels must
// reproduce the assembly kernels' output bit for bit on random inputs
// of every length and alignment. On machines without the extensions
// both sides run the portable code and the test degenerates to a
// self-check.
func TestKernelFallbacksBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	savedAVX, saved512 := hasAVX, hasAVX512
	defer func() { hasAVX, hasAVX512 = savedAVX, saved512 }()

	for n := 0; n < 100; n++ {
		x := make([]float64, n)
		d0 := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
			d0[i] = rng.NormFloat64()
		}
		a := rng.NormFloat64()

		// scaleInto: vector vs forced-generic.
		hasAVX, hasAVX512 = savedAVX, saved512
		s1 := append([]float64(nil), d0...)
		scaleInto(s1, x, a)
		hasAVX, hasAVX512 = false, false
		s2 := append([]float64(nil), d0...)
		scaleInto(s2, x, a)
		for i := range s1 {
			if math.Float64bits(s1[i]) != math.Float64bits(s2[i]) {
				t.Fatalf("scaleInto n=%d i=%d: %x vs %x", n, i, s1[i], s2[i])
			}
		}

		// axpy: vector vs forced-generic.
		hasAVX, hasAVX512 = savedAVX, saved512
		a1 := append([]float64(nil), d0...)
		axpy(a1, x, a)
		hasAVX, hasAVX512 = false, false
		a2 := append([]float64(nil), d0...)
		axpy(a2, x, a)
		for i := range a1 {
			if math.Float64bits(a1[i]) != math.Float64bits(a2[i]) {
				t.Fatalf("axpy n=%d i=%d: %x vs %x", n, i, a1[i], a2[i])
			}
		}

		// sumSqInto: vector vs forced-generic.
		hasAVX, hasAVX512 = savedAVX, saved512
		t1 := append([]float64(nil), d0...)
		tt1 := append([]float64(nil), x...)
		sumSqInto(t1, tt1, x)
		hasAVX, hasAVX512 = false, false
		t2 := append([]float64(nil), d0...)
		tt2 := append([]float64(nil), x...)
		sumSqInto(t2, tt2, x)
		for i := range t1 {
			if math.Float64bits(t1[i]) != math.Float64bits(t2[i]) ||
				math.Float64bits(tt1[i]) != math.Float64bits(tt2[i]) {
				t.Fatalf("sumSqInto n=%d i=%d differs", n, i)
			}
		}

		// gaddInto: vector vs forced-generic, random offsets.
		nOffs := rng.Intn(9)
		prod := make([]float64, 4*tileCap)
		for i := range prod {
			prod[i] = rng.NormFloat64()
		}
		offs := make([]uint32, nOffs)
		w := n
		if w > tileCap {
			w = tileCap
		}
		for i := range offs {
			offs[i] = uint32(rng.Intn(3) * tileCap)
		}
		hasAVX, hasAVX512 = savedAVX, saved512
		g1 := append([]float64(nil), d0[:w]...)
		gaddInto(g1, prod, offs)
		hasAVX, hasAVX512 = false, false
		g2 := append([]float64(nil), d0[:w]...)
		gaddInto(g2, prod, offs)
		for i := range g1 {
			if math.Float64bits(g1[i]) != math.Float64bits(g2[i]) {
				t.Fatalf("gaddInto w=%d i=%d: %x vs %x", w, i, g1[i], g2[i])
			}
		}
	}
}

// TestGaddChainOrder pins the defining property of the add-only kernel
// directly: per element, contributions apply in offset order (a chain
// of rounded adds), not in any reassociated order.
func TestGaddChainOrder(t *testing.T) {
	// Three values whose sum depends on association: (big + tiny) + -big
	// != big + (tiny + -big) in float64. Variables, not constants, so
	// the reference below uses float64 arithmetic.
	big, tiny := 1e300, 1.0
	prod := make([]float64, 3*tileCap)
	for j := 0; j < tileCap; j++ {
		prod[0*tileCap+j] = big
		prod[1*tileCap+j] = tiny
		prod[2*tileCap+j] = -big
	}
	dst := make([]float64, tileCap)
	gaddInto(dst, prod, []uint32{0, tileCap, 2 * tileCap})
	want := ((0.0 + big) + tiny) + -big
	for j, v := range dst {
		if math.Float64bits(v) != math.Float64bits(want) {
			t.Fatalf("element %d: %v, want %v (chain order broken)", j, v, want)
		}
	}
}
