// Benchmark harness regenerating every table and figure of the paper's
// evaluation, plus ablations of the modelling choices called out in
// DESIGN.md §5. Each experiment prints its paper-style rows once and
// reports shape metrics through the benchmark metric channel.
//
// Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/aes"
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/cpi"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/leakscan"
	"repro/internal/masking"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/replay"
	"repro/internal/sca"
	"repro/internal/znorm"
)

var benchKey = [16]byte{0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C}

var printOnce sync.Map

func printHeader(name, text string) {
	if _, dup := printOnce.LoadOrStore(name, true); !dup {
		fmt.Printf("\n===== %s =====\n%s\n", name, text)
	}
}

// BenchmarkTable1DualIssueMatrix regenerates the paper's Table 1: the
// 7x7 dual-issue matrix recovered purely from CPI measurements on
// hazard-free vs hazard-laden instruction pairs.
func BenchmarkTable1DualIssueMatrix(b *testing.B) {
	var match, total int
	for i := 0; i < b.N; i++ {
		m, err := cpi.MeasureMatrix(pipeline.DefaultConfig(), 64)
		if err != nil {
			b.Fatal(err)
		}
		match, total = m.Agreement()
		if i == 0 {
			printHeader("Table 1: dual-issue matrix from CPI", m.Table()+
				fmt.Sprintf("agreement with the published Table 1: %d/%d", match, total))
		}
	}
	b.ReportMetric(float64(match), "cells_matching")
	b.ReportMetric(float64(total), "cells_total")
}

// BenchmarkFigure2Inference regenerates the paper's Figure 2: the
// pipeline structure deduced from the CPI matrix and targeted probes.
func BenchmarkFigure2Inference(b *testing.B) {
	matches := 0.0
	for i := 0; i < b.N; i++ {
		cfg := pipeline.DefaultConfig()
		m, err := cpi.MeasureMatrix(cfg, 64)
		if err != nil {
			b.Fatal(err)
		}
		p, err := cpi.MeasureProbes(cfg, 64)
		if err != nil {
			b.Fatal(err)
		}
		inf := cpi.Infer(m, p)
		if ok, _ := inf.MatchesPaper(); ok {
			matches = 1
		}
		if i == 0 {
			printHeader("Figure 2: inferred pipeline structure", inf.String())
		}
	}
	b.ReportMetric(matches, "matches_paper")
}

// BenchmarkTable2LeakageScan regenerates the paper's Table 2: the seven
// leakage micro-benchmarks with per-component power-model verdicts at
// the >99.5% confidence criterion.
func BenchmarkTable2LeakageScan(b *testing.B) {
	var match, total int
	for i := 0; i < b.N; i++ {
		rs, err := leakscan.RunAll(leakscan.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		match, total = leakscan.Agreement(rs)
		if i == 0 {
			printHeader("Table 2: leakage characterization", leakscan.Report(rs))
		}
	}
	b.ReportMetric(float64(match), "cells_matching")
	b.ReportMetric(float64(total), "cells_total")
}

// BenchmarkFigure3AESCPA regenerates the paper's Figure 3: CPA against
// the bare-metal AES with the HW-of-SubBytes-output model, including the
// primitive-region correlation annotations.
func BenchmarkFigure3AESCPA(b *testing.B) {
	var res *attack.Fig3Result
	for i := 0; i < b.N; i++ {
		opt := attack.DefaultFig3Options()
		opt.Traces = 800
		opt.Rounds = 1
		var err error
		res, err = attack.RunFigure3(benchKey, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			s := fmt.Sprintf("key byte %d: recovered %#02x (true %#02x), rank %d, confidence %.4f\n",
				res.KeyByte, res.Recovered, res.TrueKey, res.Rank, res.Confidence)
			for _, r := range res.Regions {
				s += fmt.Sprintf("  %-4s round %2d [%6.2f..%6.2f us] peak %+0.3f @ %.2f us\n",
					r.Name, r.Round, r.StartUs, r.EndUs, r.PeakCorr, r.PeakSampleUs)
			}
			printHeader("Figure 3: bare-metal AES CPA", s)
		}
	}
	success := 0.0
	if res.Success() {
		success = 1
	}
	b.ReportMetric(success, "key_recovered")
	b.ReportMetric(float64(res.Rank), "true_key_rank")
}

// BenchmarkFigure4NoisyCPA regenerates the paper's Figure 4: CPA against
// AES under the loaded-Linux environment with the HD-between-consecutive-
// SubBytes-stores model, 100 traces of 16 averaged executions.
func BenchmarkFigure4NoisyCPA(b *testing.B) {
	var res *attack.Fig4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = attack.RunFigure4(benchKey, attack.DefaultFig4Options())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printHeader("Figure 4: loaded-Linux AES CPA", fmt.Sprintf(
				"key byte %d: recovered %#02x (true %#02x), |r| %.3f vs runner-up %.3f, confidence %.4f over %d traces",
				res.KeyByte, res.Recovered, res.TrueKey, res.BestCorr, res.SecondCorr, res.Confidence, res.Traces))
		}
	}
	success := 0.0
	if res.Success() {
		success = 1
	}
	b.ReportMetric(success, "key_recovered")
	b.ReportMetric(res.Confidence, "confidence")
}

// BenchmarkAblationOperandSwap quantifies §4.2 (i)+(ii): how many leakage
// events change when the operands of one commutative instruction swap.
func BenchmarkAblationOperandSwap(b *testing.B) {
	var changed int
	for i := 0; i < b.N; i++ {
		a, err := core.Analyze(isa.MustAssemble("eor r0, r1, r2\neor r3, r4, r5"),
			pipeline.DefaultConfig(), power.DefaultModel(), nil)
		if err != nil {
			b.Fatal(err)
		}
		s, err := core.Analyze(isa.MustAssemble("eor r0, r1, r2\neor r3, r5, r4"),
			pipeline.DefaultConfig(), power.DefaultModel(), nil)
		if err != nil {
			b.Fatal(err)
		}
		onlyA, onlyB := core.Diff(a, s)
		changed = len(onlyA) + len(onlyB)
	}
	b.ReportMetric(float64(changed), "events_changed")
}

// BenchmarkAblationDualIssue measures §4.2 (iii): the dual-issued share
// pair is clean on the A7 model and recombines on a scalar core.
func BenchmarkAblationDualIssue(b *testing.B) {
	var onDual, onScalar int
	for i := 0; i < b.N; i++ {
		v1, err := masking.CheckStatic(masking.DualIssueXor(), pipeline.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		v2, err := masking.CheckStatic(masking.DualIssueXor(), pipeline.ScalarConfig())
		if err != nil {
			b.Fatal(err)
		}
		onDual, onScalar = len(v1), len(v2)
	}
	printHeader("Ablation: dual issue as countermeasure", fmt.Sprintf(
		"share recombinations: dual-issue core %d, scalar core %d", onDual, onScalar))
	b.ReportMetric(float64(onDual), "violations_dual")
	b.ReportMetric(float64(onScalar), "violations_scalar")
}

// BenchmarkAblationRemanence measures §4.2 (iv): MDR data remanence
// combining a load with a later, unrelated store.
func BenchmarkAblationRemanence(b *testing.B) {
	var events int
	for i := 0; i < b.N; i++ {
		rep, err := core.Analyze(isa.MustAssemble("ldr r0, [r8]\nadd r1, r2, r3\nstr r1, [r9]"),
			pipeline.DefaultConfig(), power.DefaultModel(), func(c *pipeline.Core) {
				c.SetReg(isa.R8, 0x100)
				c.SetReg(isa.R9, 0x200)
			})
		if err != nil {
			b.Fatal(err)
		}
		events = 0
		for _, e := range rep.ByComponent(pipeline.MDR) {
			if e.Kind == core.KindHD && e.A.Role == pipeline.RoleLoadData && e.B.Role == pipeline.RoleStoreData {
				events++
			}
		}
	}
	b.ReportMetric(float64(events), "remanence_events")
}

// BenchmarkAblationNopInsertion measures §4.2's nop observation: inserting
// a semantically neutral nop adds leakage events.
func BenchmarkAblationNopInsertion(b *testing.B) {
	var added int
	for i := 0; i < b.N; i++ {
		plain, err := core.Analyze(isa.MustAssemble("mov r0, r1\nmov r2, r3"),
			pipeline.DefaultConfig(), power.DefaultModel(), nil)
		if err != nil {
			b.Fatal(err)
		}
		nopped, err := core.Analyze(isa.MustAssemble("mov r0, r1\nnop\nmov r2, r3"),
			pipeline.DefaultConfig(), power.DefaultModel(), nil)
		if err != nil {
			b.Fatal(err)
		}
		_, onlyNopped := core.Diff(plain, nopped)
		added = len(onlyNopped)
	}
	b.ReportMetric(float64(added), "events_added_by_nop")
}

// BenchmarkAblationAlignBuffer toggles the LSU align buffer (DESIGN.md
// ablation 3): row 7's cross-word byte combination must disappear.
func BenchmarkAblationAlignBuffer(b *testing.B) {
	detected := func(withBuffer bool) bool {
		opt := leakscan.DefaultOptions()
		opt.Traces = 1500
		opt.Core.AlignBuffer = withBuffer
		bench := leakscan.Benchmarks()[6]
		res, err := leakscan.RunBenchmark(&bench, opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range res.Exprs {
			if e.Column == leakscan.ColAlign {
				return e.Detected
			}
		}
		return false
	}
	var with, without bool
	for i := 0; i < b.N; i++ {
		with = detected(true)
		without = detected(false)
	}
	printHeader("Ablation: align buffer", fmt.Sprintf(
		"rC^rG detected: with buffer %v, without %v", with, without))
	b.ReportMetric(b2f(with), "detected_with_buffer")
	b.ReportMetric(b2f(without), "detected_without_buffer")
}

// BenchmarkAblationShifterWeight verifies the §4.1 magnitude claim: the
// shifter-buffer correlation sits at roughly a tenth of the IS/EX bus
// correlation under the default weights.
func BenchmarkAblationShifterWeight(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		opt := leakscan.DefaultOptions()
		opt.Traces = 4000
		bench := leakscan.Benchmarks()[3] // shifted adds
		res, err := leakscan.RunBenchmark(&bench, opt)
		if err != nil {
			b.Fatal(err)
		}
		var shift, bus float64
		for _, e := range res.Exprs {
			// Use the second instruction's shifted value: the first one's
			// window is border-inflated by the initial zero-state latch
			// transition (a full-weight HW event).
			if e.Column == leakscan.ColShift && e.Name == "rF<<n" {
				shift = e.Peak
			}
			if e.Column == leakscan.ColISEX && e.Name == "rB^rE" {
				bus = e.Peak
			}
		}
		if bus != 0 {
			ratio = abs(shift) / abs(bus)
		}
	}
	printHeader("Ablation: shifter leakage magnitude", fmt.Sprintf(
		"|r_shift| / |r_bus| = %.3f (paper: about 1/10)", ratio))
	b.ReportMetric(ratio, "shift_to_bus_ratio")
}

// BenchmarkAblationAveraging toggles the 16-fold on-scope averaging of
// the Figure 4 acquisition (DESIGN.md ablation 5).
func BenchmarkAblationAveraging(b *testing.B) {
	run := func(avg int) float64 {
		opt := attack.DefaultFig4Options()
		opt.Averages = avg
		res, err := attack.RunFigure4(benchKey, opt)
		if err != nil {
			b.Fatal(err)
		}
		return res.Confidence
	}
	var c1, c16 float64
	for i := 0; i < b.N; i++ {
		c1 = run(1)
		c16 = run(16)
	}
	printHeader("Ablation: acquisition averaging", fmt.Sprintf(
		"distinguishing confidence: avg=1 %.4f, avg=16 %.4f", c1, c16))
	b.ReportMetric(c1, "confidence_avg1")
	b.ReportMetric(c16, "confidence_avg16")
}

// BenchmarkAblationIssuePolicy contrasts the measured Table 1 policy with
// a purely structural pairing rule (DESIGN.md ablation 1): the cells that
// flip are policy decisions, not resource limits.
func BenchmarkAblationIssuePolicy(b *testing.B) {
	var flipped int
	for i := 0; i < b.N; i++ {
		cfg := pipeline.DefaultConfig()
		cfg.StructuralPolicyOnly = true
		m, err := cpi.MeasureMatrix(cfg, 32)
		if err != nil {
			b.Fatal(err)
		}
		match, total := m.Agreement()
		flipped = total - match
	}
	printHeader("Ablation: structural-only issue policy", fmt.Sprintf(
		"%d Table 1 cells are policy decisions rather than structural limits", flipped))
	b.ReportMetric(float64(flipped), "policy_cells")
}

// BenchmarkPipelineSimulation measures raw simulator throughput on the
// full 10-round AES.
func BenchmarkPipelineSimulation(b *testing.B) {
	tgt, err := aes.NewTarget(pipeline.DefaultConfig(), benchKey, aes.DefaultProgramOptions())
	if err != nil {
		b.Fatal(err)
	}
	var pt [16]byte
	b.ResetTimer()
	instrs := 0
	for i := 0; i < b.N; i++ {
		pt[0] = byte(i)
		res, _, err := tgt.Run(pt)
		if err != nil {
			b.Fatal(err)
		}
		instrs = res.DynamicInstrs()
	}
	b.ReportMetric(float64(instrs), "instrs/encryption")
}

// BenchmarkPowerSynthesis measures trace synthesis over one AES round.
func BenchmarkPowerSynthesis(b *testing.B) {
	tgt, err := aes.NewTarget(pipeline.DefaultConfig(), benchKey, aes.ProgramOptions{Rounds: 1, PadNops: 8})
	if err != nil {
		b.Fatal(err)
	}
	res, _, err := tgt.Run([16]byte{1, 2, 3})
	if err != nil {
		b.Fatal(err)
	}
	m := power.DefaultModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Synthesize(res.Timeline, nil)
	}
}

// benchEngineCPA10k runs the engine's full 10k-trace streaming CPA —
// the DESIGN.md §6 scaling experiment — against the one-round AES
// target with the given pool size, synthesis mode and replay batch
// width (0: default lanes, negative: scalar per-trace replay).
func benchEngineCPA10k(b *testing.B, workers int, mode engine.Mode, lanes int) {
	opt := attack.DefaultFig3Options()
	opt.Traces = 10000
	opt.Rounds = 1
	opt.Averages = 1
	opt.Workers = workers
	opt.Synth = mode
	opt.Lanes = lanes
	var res *attack.Fig3Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = attack.RunFigure3(benchKey, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(opt.Traces)*float64(b.N)/b.Elapsed().Seconds(), "traces/s")
	b.ReportMetric(b2f(res.Success()), "key_recovered")
	b.ReportMetric(b2f(res.Replayed), "replayed")
	b.ReportMetric(b2f(res.Batched), "batched")
}

// BenchmarkEngineCPA10kSerial is the one-worker full-simulation
// baseline of the 10k-trace streaming CPA — the shape of the attack
// before compiled replay existed. Divide its time by the parallel
// benchmarks' for the scaling factors.
func BenchmarkEngineCPA10kSerial(b *testing.B) { benchEngineCPA10k(b, 1, engine.ModeSimulate, -1) }

// BenchmarkEngineCPA10kSimulate runs the attack with one worker per
// core under full simulation — the modern simulate path, against which
// the replay benchmarks isolate their speedups at equal worker count.
func BenchmarkEngineCPA10kSimulate(b *testing.B) { benchEngineCPA10k(b, 0, engine.ModeSimulate, -1) }

// BenchmarkEngineCPA10kReplayScalar runs the attack with one worker per
// core and scalar (one-trace-at-a-time) compiled replay — the pre-batch
// replay path, against which BenchmarkEngineCPA10kParallel isolates the
// lane-parallel speedup.
func BenchmarkEngineCPA10kReplayScalar(b *testing.B) { benchEngineCPA10k(b, 0, engine.ModeAuto, -1) }

// BenchmarkEngineCPA10kParallel runs the attack with one worker per
// core and the lane-parallel batched replay path (the auto default).
// The result is bit-identical to every other variant — only faster.
func BenchmarkEngineCPA10kParallel(b *testing.B) { benchEngineCPA10k(b, 0, engine.ModeAuto, 0) }

// BenchmarkEngineCPA10kLanes32 / 64 are the explicit-width legs of the
// lane sweep behind the DefaultLanes choice (the default leg above
// covers DefaultLanes itself).
func BenchmarkEngineCPA10kLanes32(b *testing.B) { benchEngineCPA10k(b, 0, engine.ModeAuto, 32) }
func BenchmarkEngineCPA10kLanes64(b *testing.B) { benchEngineCPA10k(b, 0, engine.ModeAuto, 64) }

// BenchmarkReplayVM measures the compiled-replay VM alone on the
// one-round AES schedule — the per-trace synthesis floor, to compare
// against BenchmarkPipelineSimulation's per-execution cost. One warmup
// run pays the schedule compilation and the pooled scratch, so the
// timed iterations report the steady state even at -benchtime=1x.
func BenchmarkReplayVM(b *testing.B) {
	tgt, err := aes.NewTarget(pipeline.DefaultConfig(), benchKey, aes.ProgramOptions{Rounds: 1, PadNops: 8})
	if err != nil {
		b.Fatal(err)
	}
	synth, err := engine.NewSynthesizer(engine.ModeReplay, pipeline.DefaultConfig(), tgt.Program())
	if err != nil {
		b.Fatal(err)
	}
	use := func(pipeline.Timeline, *pipeline.Core) error { return nil }
	var pt [16]byte
	run := func(i int) {
		pt[0], pt[1] = byte(i), byte(i>>8)
		if err := synth.Run(func(core *pipeline.Core) { tgt.InitCore(core, pt) }, use); err != nil {
			b.Fatal(err)
		}
	}
	run(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(i)
	}
}

// BenchmarkBatchVM measures the lane-parallel replay VM with fused
// power synthesis on the one-round AES schedule: one iteration is one
// DefaultLanes-wide batch (so divide ns/op by the lane count for the
// per-trace floor; the reported traces/s does that).
func BenchmarkBatchVM(b *testing.B) {
	tgt, err := aes.NewTarget(pipeline.DefaultConfig(), benchKey, aes.ProgramOptions{Rounds: 1, PadNops: 8})
	if err != nil {
		b.Fatal(err)
	}
	synth, err := engine.NewSynthesizer(engine.ModeReplay, pipeline.DefaultConfig(), tgt.Program())
	if err != nil {
		b.Fatal(err)
	}
	m := power.DefaultModel()
	// One scalar run compiles the schedule so every timed iteration
	// takes the batch path.
	var pt [16]byte
	if err := synth.Run(func(core *pipeline.Core) { tgt.InitCore(core, pt) },
		func(pipeline.Timeline, *pipeline.Core) error { return nil }); err != nil {
		b.Fatal(err)
	}
	init := func(lane int, core *pipeline.Core) error {
		pt[0], pt[1] = byte(lane), byte(lane>>8)
		tgt.InitCore(core, pt)
		return nil
	}
	use := func(int, []float64, *pipeline.Core) error { return nil }
	// Warmup batch: pays the schedule lowering and the lane scratch, so
	// the timed iterations report the steady state even at
	// -benchtime=1x.
	if err := synth.RunBatch(&m, engine.DefaultLanes, init, use); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := synth.RunBatch(&m, engine.DefaultLanes, init, use); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(engine.DefaultLanes)*float64(b.N)/b.Elapsed().Seconds(), "traces/s")
}

// benchNormSource is a SplitMix64-backed power.NormSource for the
// expansion microbenchmark — the same bulk sampler the engine feeds the
// fused path.
type benchNormSource struct{ state uint64 }

func (s *benchNormSource) FillNorm(dst []float64) { znorm.Fill(dst, &s.state) }

// BenchmarkFusedExpand measures the fused block expansion alone: one
// iteration expands a MaxLanes-wide block of one-round-AES cycle powers
// into sample-major noisy trace lanes (batched Gaussian noise included),
// the work RunBatched performs per lane group after the batch VM run.
func BenchmarkFusedExpand(b *testing.B) {
	tgt, err := aes.NewTarget(pipeline.DefaultConfig(), benchKey, aes.ProgramOptions{Rounds: 1, PadNops: 8})
	if err != nil {
		b.Fatal(err)
	}
	res, _, err := tgt.Run([16]byte{1, 2, 3})
	if err != nil {
		b.Fatal(err)
	}
	m := power.DefaultModel()
	cycles := m.CyclePowers(nil, res.Timeline)
	const lanes = replay.MaxLanes
	be := &power.BatchExpand{Lanes: lanes, Avg: 1}
	srcs := make([]*benchNormSource, lanes)
	for lane := 0; lane < lanes; lane++ {
		be.Rows = append(be.Rows, cycles)
		be.Out = append(be.Out, nil)
		srcs[lane] = &benchNormSource{state: uint64(lane)}
		be.Noise = append(be.Noise, srcs[lane])
	}
	m.ExpandCyclesBatch(be) // size the trace buffers outside the timing
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ExpandCyclesBatch(be)
	}
	b.ReportMetric(float64(lanes)*float64(b.N)/b.Elapsed().Seconds(), "traces/s")
}

// BenchmarkEngineFullKey measures the sixteen-bank streaming recovery of
// the complete first-round key from one shared trace stream.
func BenchmarkEngineFullKey(b *testing.B) {
	opt := attack.DefaultFig3Options()
	opt.Traces = 700
	opt.Rounds = 1
	var res *attack.FullKeyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = attack.RecoverFullKey(benchKey, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.BytesRecovered()), "bytes_recovered")
}

// BenchmarkCPAMerge measures the chunk-reduction step: folding one
// 256-hypothesis x 1000-sample partial accumulator into another.
func BenchmarkCPAMerge(b *testing.B) {
	dst := sca.MustNewCPA(256, 1000)
	src := sca.MustNewCPA(256, 1000)
	tr := make([]float64, 1000)
	hyp := make([]float64, 256)
	for i := range hyp {
		hyp[i] = float64(i % 9)
	}
	if err := src.Add(tr, hyp); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dst.Merge(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCPAUpdate measures the incremental CPA engine with 256
// hypotheses over a 1000-sample trace.
func BenchmarkCPAUpdate(b *testing.B) {
	cpaEng := sca.MustNewCPA(256, 1000)
	tr := make([]float64, 1000)
	hyp := make([]float64, 256)
	for i := range hyp {
		hyp[i] = float64(i % 9)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr[0] = float64(i)
		if err := cpaEng.Add(tr, hyp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStaticAnalysis measures the leakage-model analyzer on the
// one-round AES program.
func BenchmarkStaticAnalysis(b *testing.B) {
	prog, layout, err := aes.BuildProgram(aes.ProgramOptions{Rounds: 1, PadNops: 8})
	if err != nil {
		b.Fatal(err)
	}
	rk := aes.ExpandKey(benchKey)
	init := func(c *pipeline.Core) {
		c.Mem().WriteBytes(layout.SboxAddr, aes.Sbox[:])
		c.Mem().WriteBytes(layout.KeyAddr, rk[:])
		c.SetReg(isa.R0, layout.StateAddr)
		c.SetReg(isa.R1, layout.KeyAddr)
		c.SetReg(isa.R2, layout.SboxAddr)
		c.SetReg(isa.SP, layout.StackAddr)
	}
	b.ResetTimer()
	events := 0
	for i := 0; i < b.N; i++ {
		rep, err := core.Analyze(prog, pipeline.DefaultConfig(), power.DefaultModel(), init)
		if err != nil {
			b.Fatal(err)
		}
		events = len(rep.Events)
	}
	b.ReportMetric(float64(events), "leakage_events")
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
