#!/usr/bin/env bash
# tracestore_smoke.sh — corruption-injection smoke of the crash-safe
# trace store and the resumable ingestion path, end to end on a real
# socket:
#
#   1. tracegen acquires a trace set; scadctl uploads it part by part
#      (without committing), a byte of the server-side assembled stream
#      is flipped, and the commit MUST be refused (nonzero exit, the
#      damaged part listed) — corrupt bytes never become a store.
#   2. Re-running the upload heals exactly the damaged part, the commit
#      succeeds, and out-of-core CPA over the ingested store recovers
#      the planted key; the repeated analyze is a byte-identical cache
#      hit.
#   3. A local store takes a mid-payload bit flip: verification must
#      quarantine exactly that chunk and exit 3 (degraded, not error).
#   4. A copy of the store loses its data-file tail: the torn final
#      chunk must be reported truncated, again exit 3.
#
# Every failure mode must be detected and reported — never a panic,
# never silently altered statistics.
set -euo pipefail

KEY=2b7e151628aed2a6abf7158809cf4f3c

WORK=$(mktemp -d)
echo "== build"
go build -o "$WORK/tracegen" ./cmd/tracegen
go build -o "$WORK/scad" ./cmd/scad
go build -o "$WORK/scadctl" ./cmd/scadctl

echo "== acquire a trace set"
"$WORK/tracegen" -n 80 -rounds 1 -o "$WORK/traces.bin" -key "$KEY" >/dev/null

ADDR=127.0.0.1:8719
"$WORK/scad" -addr "$ADDR" -data "$WORK/data" 2>"$WORK/scad.log" &
SCAD_PID=$!
trap 'kill $SCAD_PID 2>/dev/null || true; wait $SCAD_PID 2>/dev/null || true' EXIT

# Same readiness gate as scad_smoke.sh: the /healthz detail, not merely
# an open socket.
wait_ready() {
  local base=$1 deadline=$((SECONDS + 30))
  while [ "$SECONDS" -lt "$deadline" ]; do
    if curl -sf "$base/healthz" 2>/dev/null | grep -q '"ready": true'; then
      return 0
    fi
    sleep 0.1
  done
  return 1
}
wait_ready "http://$ADDR" || {
  echo "scad never became ready"; cat "$WORK/scad.log"; exit 1; }

echo "== upload without committing, then damage the server-side stream"
"$WORK/scadctl" upload -server "http://$ADDR" -file "$WORK/traces.bin" \
  -part 65536 -chunk 16 -commit=false | tee "$WORK/upload1.log"
ID=$(awk '/^upload /{sub(":", "", $2); print $2; exit}' "$WORK/upload1.log")
[ -n "$ID" ] || { echo "could not parse upload id"; exit 1; }

BIN="$WORK/data/uploads/$ID.bin"
[ -f "$BIN" ] || { echo "assembled stream $BIN missing"; exit 1; }
python3 - "$BIN" <<'PYEOF'
import sys
path = sys.argv[1]
with open(path, "r+b") as f:
    f.seek(70000)            # mid-part, far from the header
    b = f.read(1)
    f.seek(70000)
    f.write(bytes([b[0] ^ 0x40]))
PYEOF

echo "== commit of the damaged upload must be refused"
set +e
"$WORK/scadctl" commit -server "http://$ADDR" -id "$ID" 2>"$WORK/refused.log"
RC=$?
set -e
[ "$RC" -ne 0 ] || { echo "commit of a damaged upload SUCCEEDED"; exit 1; }
grep -q 'commit refused' "$WORK/refused.log" || {
  echo "refusal did not name the damage:"; cat "$WORK/refused.log"; exit 1; }
echo "refused as it should be: $(cat "$WORK/refused.log")"

echo "== heal (re-upload sends only the damaged part) and commit"
"$WORK/scadctl" upload -server "http://$ADDR" -file "$WORK/traces.bin" \
  -part 65536 -chunk 16 | tee "$WORK/upload2.log"
grep -q ', 1 to send$' "$WORK/upload2.log" || {
  echo "healing re-upload did not transfer exactly the 1 damaged part"; exit 1; }
grep -q '^committed ' "$WORK/upload2.log" || {
  echo "healed upload did not commit"; exit 1; }

echo "== out-of-core CPA over the ingested store recovers the key"
"$WORK/scadctl" analyze -server "http://$ADDR" -set "$ID" -kind cpa \
  -key "$KEY" | tee "$WORK/cpa.json"
python3 - "$WORK/cpa.json" <<'PYEOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["complete"], "analysis over an intact store reported incomplete"
assert r["rank"] == 0, f"true key byte not rank 0: rank {r['rank']}"
assert r["stats"]["quarantined_chunks"] == 0
PYEOF

# The repeat must be served from cache, byte-identical.
"$WORK/scadctl" analyze -server "http://$ADDR" -set "$ID" -kind cpa \
  -key "$KEY" > "$WORK/cpa2.json"
cmp "$WORK/cpa.json" "$WORK/cpa2.json" || {
  echo "repeated analyze bodies differ"; exit 1; }
"$WORK/scadctl" analyze -server "http://$ADDR" -set "$ID" -kind tvla >/dev/null
echo "cpa rank 0 over the store, repeat byte-identical, tvla ran"

echo "== local store: mid-payload bit flip must quarantine one chunk"
"$WORK/tracegen" -n 32 -rounds 1 -o "" -store "$WORK/store" -store-chunk 8 -key "$KEY" >/dev/null
"$WORK/scadctl" store -dir "$WORK/store"   # clean store verifies, exit 0

cp -r "$WORK/store" "$WORK/store-torn"
python3 - "$WORK/store/data.bin" <<'PYEOF'
import sys
path = sys.argv[1]
with open(path, "r+b") as f:
    f.seek(0, 2)
    size = f.tell()
    off = size // 2          # middle of the file: inside some chunk payload
    f.seek(off)
    b = f.read(1)
    f.seek(off)
    f.write(bytes([b[0] ^ 0x01]))
PYEOF
set +e
"$WORK/scadctl" store -dir "$WORK/store" 2>"$WORK/flip.log"
RC=$?
set -e
[ "$RC" -eq 3 ] || { echo "bit-flipped store: want exit 3, got $RC"; cat "$WORK/flip.log"; exit 1; }
grep -q '1 chunks (8 traces) quarantined' "$WORK/flip.log" || {
  echo "quarantine count wrong:"; cat "$WORK/flip.log"; exit 1; }
echo "bit flip: exactly one chunk quarantined, exit 3"

echo "== local store: torn data-file tail must be reported truncated"
python3 - "$WORK/store-torn/data.bin" <<'PYEOF'
import sys, os
path = sys.argv[1]
os.truncate(path, os.path.getsize(path) - 9)
PYEOF
set +e
"$WORK/scadctl" store -dir "$WORK/store-torn" 2>"$WORK/torn.log"
RC=$?
set -e
[ "$RC" -eq 3 ] || { echo "torn store: want exit 3, got $RC"; cat "$WORK/torn.log"; exit 1; }
grep -q '1 chunks (8 traces) truncated' "$WORK/torn.log" || {
  echo "truncation count wrong:"; cat "$WORK/torn.log"; exit 1; }
echo "torn tail: final chunk reported truncated, exit 3"

echo "tracestore smoke: all corruption injected, all detected, none served"
