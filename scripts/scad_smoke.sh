#!/usr/bin/env bash
# scad_smoke.sh [scad-binary] — end-to-end smoke of the scad service:
# start it on a local port, issue the same /v1/attack request twice,
# and require (a) a miss-then-hit cache disposition and (b) strictly
# byte-identical response bodies. Also exercises an async campaign job
# to completion and the /v1/results retrieval path.
set -euo pipefail

SCAD=${1:-}
if [ -z "$SCAD" ]; then
  SCAD=$(mktemp -d)/scad
  go build -o "$SCAD" ./cmd/scad
fi

ADDR=127.0.0.1:8715
WORK=$(mktemp -d)
"$SCAD" -addr "$ADDR" -spill "$WORK/results.jsonl" 2>"$WORK/scad.log" &
SCAD_PID=$!
trap 'kill $SCAD_PID 2>/dev/null || true; wait $SCAD_PID 2>/dev/null || true' EXIT

# Gate on the /healthz readiness detail, not merely an open socket:
# the service reports "ready": true only once it can actually take
# work, and flips it off again while draining. The JSON spelling is
# pinned by TestHealthzReportsReadinessDetail.
wait_ready() {
  local base=$1 deadline=$((SECONDS + 30))
  while [ "$SECONDS" -lt "$deadline" ]; do
    if curl -sf "$base/healthz" 2>/dev/null | grep -q '"ready": true'; then
      return 0
    fi
    sleep 0.1
  done
  return 1
}
wait_ready "http://$ADDR" || {
  echo "scad never became ready"; cat "$WORK/scad.log"; exit 1; }

REQ='{"figure":"fig3","traces":2000,"rounds":2,"seed":42}'
curl -sf -D "$WORK/h1" -o "$WORK/r1.json" -X POST -d "$REQ" "http://$ADDR/v1/attack"
curl -sf -D "$WORK/h2" -o "$WORK/r2.json" -X POST -d "$REQ" "http://$ADDR/v1/attack"

grep -qi '^x-scad-cache: miss' "$WORK/h1" || {
  echo "first request was not a cache miss:"; cat "$WORK/h1"; exit 1; }
grep -qi '^x-scad-cache: hit' "$WORK/h2" || {
  echo "second request was not served from cache:"; cat "$WORK/h2"; exit 1; }
cmp "$WORK/r1.json" "$WORK/r2.json" || {
  echo "repeated responses are not byte-identical"; exit 1; }
echo "attack: miss -> hit, bodies byte-identical ($(wc -c < "$WORK/r1.json") bytes)"

# Async campaign: submit, poll to completion, fetch the cached result.
SPEC='{"name":"scad-smoke","seed":5,"workloads":[{"kind":"fig3","traces":[400],"rounds":1},{"kind":"fig4","traces":[100]}]}'
JOB=$(curl -sf -X POST -d "$SPEC" "http://$ADDR/v1/campaign" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
for _ in $(seq 1 300); do
  STATE=$(curl -sf "http://$ADDR/v1/jobs/$JOB" | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
  case "$STATE" in done|failed|canceled) break ;; esac
  sleep 0.2
done
[ "$STATE" = done ] || { echo "campaign job ended in state $STATE"; cat "$WORK/scad.log"; exit 1; }
curl -sf "http://$ADDR/v1/results/$JOB" >/dev/null || { echo "campaign result not retrievable"; exit 1; }
echo "campaign: job $JOB done, result cached and retrievable"

curl -sf "http://$ADDR/v1/stats"
