#!/usr/bin/env bash
# bench_replay.sh — run the 10k-trace streaming-CPA benchmark trio
# (serial simulate, parallel simulate, parallel replay) plus the
# per-execution synthesis microbenchmarks, and write machine-readable
# results to BENCH_replay.json: ns/op, B/op, allocs/op per benchmark
# and the replay speedups against both simulate baselines.
#
# Usage: scripts/bench_replay.sh [output.json]
#   BENCH_TIME=3x scripts/bench_replay.sh          # more iterations
#   PR1_BASELINE_NS=6770397145 scripts/bench_replay.sh
#     # also report the speedup against a PR 1 (pre-replay) measurement
#     # of BenchmarkEngineCPA10kSerial taken on the same machine
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_replay.json}"
benchtime="${BENCH_TIME:-1x}"
pr1="${PR1_BASELINE_NS:-}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
	-bench '^(BenchmarkEngineCPA10kSerial|BenchmarkEngineCPA10kSimulate|BenchmarkEngineCPA10kParallel|BenchmarkReplayVM|BenchmarkPipelineSimulation)$' \
	-benchtime "$benchtime" -benchmem . | tee "$raw"

awk -v out="$out" -v goversion="$(go version | awk '{print $3}')" -v pr1="$pr1" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns[name] = $3
	for (i = 4; i <= NF; i++) {
		if ($(i) == "B/op")      bytes[name]  = $(i - 1)
		if ($(i) == "allocs/op") allocs[name] = $(i - 1)
		if ($(i) == "traces/s")  tps[name]    = $(i - 1)
	}
	order[n++] = name
}
/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
END {
	serial   = ns["BenchmarkEngineCPA10kSerial"]
	simulate = ns["BenchmarkEngineCPA10kSimulate"]
	replay   = ns["BenchmarkEngineCPA10kParallel"]
	printf "{\n"                                            > out
	printf "  \"experiment\": \"10k-trace figure-3 streaming CPA, 1-round AES\",\n" >> out
	printf "  \"go\": \"%s\",\n", goversion                 >> out
	printf "  \"cpu\": \"%s\",\n", cpu                      >> out
	printf "  \"benchmarks\": {\n"                          >> out
	for (i = 0; i < n; i++) {
		b = order[i]
		printf "    \"%s\": {\"ns_per_op\": %s", b, ns[b]   >> out
		if (b in bytes)  printf ", \"bytes_per_op\": %s", bytes[b]   >> out
		if (b in allocs) printf ", \"allocs_per_op\": %s", allocs[b] >> out
		if (b in tps)    printf ", \"traces_per_s\": %s", tps[b]     >> out
		printf "}%s\n", (i < n - 1 ? "," : "")              >> out
	}
	printf "  },\n"                                         >> out
	if (serial != "" && replay != "" && simulate != "") {
		printf "  \"speedup_replay_vs_serial_simulate\": %.2f,\n", serial / replay   >> out
		printf "  \"speedup_replay_vs_simulate_same_workers\": %.2f,\n", simulate / replay >> out
	} else {
		printf "  \"speedup_replay_vs_serial_simulate\": null,\n"    >> out
		printf "  \"speedup_replay_vs_simulate_same_workers\": null,\n" >> out
	}
	if (pr1 != "" && replay != "") {
		printf "  \"pr1_simulate_serial_ns\": %s,\n", pr1   >> out
		printf "  \"speedup_replay_vs_pr1_simulate\": %.2f\n", pr1 / replay >> out
	} else {
		printf "  \"pr1_simulate_serial_ns\": null,\n"      >> out
		printf "  \"speedup_replay_vs_pr1_simulate\": null\n" >> out
	}
	printf "}\n"                                            >> out
}
' "$raw"

echo "wrote $out"
