#!/usr/bin/env bash
# bench_replay.sh — run the 10k-trace streaming-CPA benchmark suite
# (serial simulate, parallel simulate, scalar replay, lane-parallel
# batched replay, the 32/64-lane width sweep) plus the per-execution
# synthesis microbenchmarks and the fused-expansion stage benchmark,
# and write machine-readable results:
#
#   BENCH_replay.json — ns/op, B/op, allocs/op and traces/s per
#     benchmark, with every speedup_* field re-derived from this run
#     (no baked-in baselines from earlier PRs).
#   BENCH_batch.json — the lane-parallel batch record: fresh batch vs
#     scalar-replay comparison from this run, plus the previously
#     recorded BenchmarkEngineCPA10kParallel throughput (read from the
#     existing BENCH_replay.json before it is overwritten) as the
#     recorded-baseline reference.
#   BENCH_fused.json — the fused synthesis/accumulation record: the
#     end-to-end auto-mode pipeline (now defaulting to 64 lanes), the
#     explicit 32/64-lane legs, the 64-lane batch VM, and the fused
#     expand+noise+accumulate stage in isolation, with fresh speedups
#     and the previously recorded batch throughput (read from the
#     existing BENCH_batch.json before it is overwritten) as the
#     pre-fusion baseline.
#
# Usage: scripts/bench_replay.sh [replay_out.json] [batch_out.json] [fused_out.json]
#   BENCH_TIME=3x scripts/bench_replay.sh    # more iterations
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_replay.json}"
batchout="${2:-BENCH_batch.json}"
fusedout="${3:-BENCH_fused.json}"
benchtime="${BENCH_TIME:-1x}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# The recorded baselines, captured before this run overwrites them: the
# parallel benchmark's throughput in the existing BENCH_replay.json and
# the batch record's throughput in the existing BENCH_batch.json (the
# pre-fusion pipeline that BENCH_fused.json measures itself against).
recorded_tps=""
recorded_ns=""
if [ -f "$out" ]; then
	recorded_tps="$(awk -F'"traces_per_s": ' '/BenchmarkEngineCPA10kParallel/ {split($2, a, "}"); print a[1]}' "$out" | head -n1)"
	recorded_ns="$(awk -F'"ns_per_op": ' '/BenchmarkEngineCPA10kParallel/ {split($2, a, ","); print a[1]}' "$out" | head -n1)"
fi
recorded_batch_tps=""
if [ -f "$batchout" ]; then
	recorded_batch_tps="$(awk -F'"traces_per_s": ' '/"batch":/ {split($2, a, ","); print a[1]}' "$batchout" | head -n1)"
fi

go test -run '^$' \
	-bench '^(BenchmarkEngineCPA10kSerial|BenchmarkEngineCPA10kSimulate|BenchmarkEngineCPA10kReplayScalar|BenchmarkEngineCPA10kParallel|BenchmarkEngineCPA10kLanes32|BenchmarkEngineCPA10kLanes64|BenchmarkFusedExpand|BenchmarkReplayVM|BenchmarkBatchVM|BenchmarkPipelineSimulation)$' \
	-benchtime "$benchtime" -benchmem . | tee "$raw"

awk -v out="$out" -v batchout="$batchout" -v fusedout="$fusedout" \
	-v goversion="$(go version | awk '{print $3}')" \
	-v recorded_tps="$recorded_tps" -v recorded_ns="$recorded_ns" \
	-v recorded_batch_tps="$recorded_batch_tps" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns[name] = $3
	for (i = 4; i <= NF; i++) {
		if ($(i) == "B/op")      bytes[name]   = $(i - 1)
		if ($(i) == "allocs/op") allocs[name]  = $(i - 1)
		if ($(i) == "traces/s")  tps[name]     = $(i - 1)
		if ($(i) == "batched")   batched[name] = $(i - 1)
	}
	order[n++] = name
}
/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
function leg(name, label, dest) {
	if (name in ns)
		printf "  \"%s\": {\"ns_per_op\": %s, \"traces_per_s\": %s, \"batched\": %s},\n", \
			label, ns[name], tps[name], (name in batched ? batched[name] : "null") >> dest
	else
		printf "  \"%s\": null,\n", label >> dest
}
END {
	serial   = ns["BenchmarkEngineCPA10kSerial"]
	simulate = ns["BenchmarkEngineCPA10kSimulate"]
	scalar   = ns["BenchmarkEngineCPA10kReplayScalar"]
	batch    = ns["BenchmarkEngineCPA10kParallel"]

	printf "{\n"                                            > out
	printf "  \"experiment\": \"10k-trace figure-3 streaming CPA, 1-round AES\",\n" >> out
	printf "  \"go\": \"%s\",\n", goversion                 >> out
	printf "  \"cpu\": \"%s\",\n", cpu                      >> out
	printf "  \"benchmarks\": {\n"                          >> out
	for (i = 0; i < n; i++) {
		b = order[i]
		printf "    \"%s\": {\"ns_per_op\": %s", b, ns[b]   >> out
		if (b in bytes)  printf ", \"bytes_per_op\": %s", bytes[b]   >> out
		if (b in allocs) printf ", \"allocs_per_op\": %s", allocs[b] >> out
		if (b in tps)    printf ", \"traces_per_s\": %s", tps[b]     >> out
		printf "}%s\n", (i < n - 1 ? "," : "")              >> out
	}
	printf "  },\n"                                         >> out
	# Every speedup derives from this run; no baselines are baked in.
	if (serial != "" && batch != "")   printf "  \"speedup_batch_vs_serial_simulate\": %.2f,\n", serial / batch >> out
	else                               printf "  \"speedup_batch_vs_serial_simulate\": null,\n" >> out
	if (simulate != "" && batch != "") printf "  \"speedup_batch_vs_simulate_same_workers\": %.2f,\n", simulate / batch >> out
	else                               printf "  \"speedup_batch_vs_simulate_same_workers\": null,\n" >> out
	if (scalar != "" && batch != "")   printf "  \"speedup_batch_vs_scalar_replay\": %.2f,\n", scalar / batch >> out
	else                               printf "  \"speedup_batch_vs_scalar_replay\": null,\n" >> out
	if (serial != "" && scalar != "")  printf "  \"speedup_scalar_replay_vs_serial_simulate\": %.2f\n", serial / scalar >> out
	else                               printf "  \"speedup_scalar_replay_vs_serial_simulate\": null\n" >> out
	printf "}\n"                                            >> out

	printf "{\n"                                               > batchout
	printf "  \"experiment\": \"lane-parallel batched replay, 10k-trace figure-3 streaming CPA, 1-round AES\",\n" >> batchout
	printf "  \"go\": \"%s\",\n", goversion                    >> batchout
	printf "  \"cpu\": \"%s\",\n", cpu                         >> batchout
	if (batch != "")
		printf "  \"batch\": {\"ns_per_op\": %s, \"traces_per_s\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"batched\": %s},\n", \
			batch, tps["BenchmarkEngineCPA10kParallel"], bytes["BenchmarkEngineCPA10kParallel"], \
			allocs["BenchmarkEngineCPA10kParallel"], batched["BenchmarkEngineCPA10kParallel"] >> batchout
	else
		printf "  \"batch\": null,\n"                          >> batchout
	if (scalar != "")
		printf "  \"scalar_replay\": {\"ns_per_op\": %s, \"traces_per_s\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", \
			scalar, tps["BenchmarkEngineCPA10kReplayScalar"], bytes["BenchmarkEngineCPA10kReplayScalar"], \
			allocs["BenchmarkEngineCPA10kReplayScalar"] >> batchout
	else
		printf "  \"scalar_replay\": null,\n"                  >> batchout
	if ("BenchmarkBatchVM" in ns)
		printf "  \"batch_vm\": {\"ns_per_op\": %s, \"traces_per_s\": %s},\n", ns["BenchmarkBatchVM"], tps["BenchmarkBatchVM"] >> batchout
	if (scalar != "" && batch != "")
		printf "  \"speedup_batch_vs_scalar_replay\": %.2f,\n", scalar / batch >> batchout
	else
		printf "  \"speedup_batch_vs_scalar_replay\": null,\n" >> batchout
	if (recorded_tps != "" && tps["BenchmarkEngineCPA10kParallel"] != "") {
		printf "  \"recorded_parallel_traces_per_s\": %s,\n", recorded_tps >> batchout
		printf "  \"recorded_parallel_ns_per_op\": %s,\n", recorded_ns >> batchout
		printf "  \"speedup_batch_vs_recorded_parallel\": %.2f\n", tps["BenchmarkEngineCPA10kParallel"] / recorded_tps >> batchout
	} else {
		printf "  \"recorded_parallel_traces_per_s\": null,\n"  >> batchout
		printf "  \"recorded_parallel_ns_per_op\": null,\n"     >> batchout
		printf "  \"speedup_batch_vs_recorded_parallel\": null\n" >> batchout
	}
	printf "}\n"                                               >> batchout

	# The fused record. end_to_end is the auto-mode pipeline at the
	# default lane width (64 after the lane-cap lift); the lanes_32 /
	# lanes_64 legs are the explicit-width sweep behind that default.
	printf "{\n"                                               > fusedout
	printf "  \"experiment\": \"fused synthesis/accumulation pipeline, 10k-trace figure-3 streaming CPA, 1-round AES\",\n" >> fusedout
	printf "  \"go\": \"%s\",\n", goversion                    >> fusedout
	printf "  \"cpu\": \"%s\",\n", cpu                         >> fusedout
	leg("BenchmarkEngineCPA10kParallel", "end_to_end", fusedout)
	leg("BenchmarkEngineCPA10kLanes32", "lanes_32", fusedout)
	leg("BenchmarkEngineCPA10kLanes64", "lanes_64", fusedout)
	if ("BenchmarkBatchVM" in ns)
		printf "  \"batch_vm_64\": {\"ns_per_op\": %s, \"traces_per_s\": %s},\n", ns["BenchmarkBatchVM"], tps["BenchmarkBatchVM"] >> fusedout
	else
		printf "  \"batch_vm_64\": null,\n"                    >> fusedout
	if ("BenchmarkFusedExpand" in ns)
		printf "  \"fused_expand\": {\"ns_per_op\": %s, \"traces_per_s\": %s},\n", ns["BenchmarkFusedExpand"], tps["BenchmarkFusedExpand"] >> fusedout
	else
		printf "  \"fused_expand\": null,\n"                   >> fusedout
	if (scalar != "" && batch != "")
		printf "  \"speedup_fused_vs_scalar_replay\": %.2f,\n", scalar / batch >> fusedout
	else
		printf "  \"speedup_fused_vs_scalar_replay\": null,\n" >> fusedout
	if (serial != "" && batch != "")
		printf "  \"speedup_fused_vs_serial_simulate\": %.2f,\n", serial / batch >> fusedout
	else
		printf "  \"speedup_fused_vs_serial_simulate\": null,\n" >> fusedout
	if (recorded_batch_tps != "" && tps["BenchmarkEngineCPA10kParallel"] != "") {
		printf "  \"recorded_batch_traces_per_s\": %s,\n", recorded_batch_tps >> fusedout
		printf "  \"speedup_fused_vs_recorded_batch\": %.2f\n", tps["BenchmarkEngineCPA10kParallel"] / recorded_batch_tps >> fusedout
	} else {
		printf "  \"recorded_batch_traces_per_s\": null,\n"     >> fusedout
		printf "  \"speedup_fused_vs_recorded_batch\": null\n"  >> fusedout
	}
	printf "}\n"                                               >> fusedout
}
' "$raw"

echo "wrote $out, $batchout and $fusedout"
