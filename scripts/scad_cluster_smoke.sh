#!/usr/bin/env bash
# scad_cluster_smoke.sh [spec] [expected-results] — end-to-end proof of
# the distributed campaign path: start three scad workers, shard the
# campaign across them with scadctl, SIGKILL one worker mid-run, and
# require the merged results to be byte-identical to the committed
# single-process output. Defaults to the smoke campaign.
set -euo pipefail

SPEC=${1:-campaigns/smoke.json}
EXPECTED=${2:-campaigns/smoke.results.json}

BIN=$(mktemp -d)
go build -o "$BIN/scad" ./cmd/scad
go build -o "$BIN/scadctl" ./cmd/scadctl

WORK=$(mktemp -d)
PORTS=(8721 8722 8723)
PIDS=()
for p in "${PORTS[@]}"; do
  "$BIN/scad" -addr "127.0.0.1:$p" -spill "$WORK/w$p.jsonl" 2>"$WORK/scad-$p.log" &
  PIDS+=($!)
done
trap 'kill "${PIDS[@]}" 2>/dev/null || true; wait 2>/dev/null || true' EXIT

WORKERS="http://127.0.0.1:${PORTS[0]},http://127.0.0.1:${PORTS[1]},http://127.0.0.1:${PORTS[2]}"

# Gate on the /healthz readiness detail of every worker (same marker
# the single-service smoke and TestHealthzReportsReadinessDetail pin).
wait_ready() {
  local base=$1 deadline=$((SECONDS + 30))
  while [ "$SECONDS" -lt "$deadline" ]; do
    if curl -sf "$base/healthz" 2>/dev/null | grep -q '"ready": true'; then
      return 0
    fi
    sleep 0.1
  done
  return 1
}
for p in "${PORTS[@]}"; do
  wait_ready "http://127.0.0.1:$p" || {
    echo "worker on port $p never became ready"; cat "$WORK/scad-$p.log"; exit 1; }
done
"$BIN/scadctl" workers -workers "$WORKERS"

# Shard the campaign across the cluster and SIGKILL one worker as soon
# as the coordinator reports its first completed scenarios — mid-run by
# construction. The coordinator must re-partition the dead worker's
# shard onto the survivors and still merge byte-identical artifacts.
"$BIN/scadctl" run -spec "$SPEC" -workers "$WORKERS" \
  -out "$WORK/out" >"$WORK/ctl.out" 2>"$WORK/ctl.log" &
CTL_PID=$!
for _ in $(seq 1 500); do
  [ "$(grep -c '^worker ' "$WORK/ctl.log" 2>/dev/null || true)" -ge 3 ] && break
  kill -0 "$CTL_PID" 2>/dev/null || break
  sleep 0.02
done
kill -9 "${PIDS[2]}"
echo "SIGKILLed worker on port ${PORTS[2]} mid-campaign"
if ! wait "$CTL_PID"; then
  echo "scadctl run failed:"; cat "$WORK/ctl.log"; exit 1
fi
cat "$WORK/ctl.out"

cmp "$WORK/out/results.json" "$EXPECTED" || {
  echo "distributed results differ from the committed single-process run"; exit 1; }
echo "cluster run of $SPEC byte-identical to $EXPECTED despite worker loss"
grep -q "workers lost 1" "$WORK/ctl.out" \
  || echo "note: the campaign drained before the kill could cost scenarios"

# The degraded cluster is visible: status must exit nonzero with one
# worker down, and the survivors still report ready.
if "$BIN/scadctl" status -workers "$WORKERS"; then
  echo "scadctl status must exit nonzero with a dead worker"; exit 1
fi
"$BIN/scadctl" status -workers "http://127.0.0.1:${PORTS[0]},http://127.0.0.1:${PORTS[1]}"
