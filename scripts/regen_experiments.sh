#!/usr/bin/env sh
# Regenerates the campaign-marked sections of EXPERIMENTS.md from the
# committed campaign results. CI runs this and fails on any diff, so
# the experiment record cannot drift from the committed results (which
# are themselves byte-compared against a fresh campaign run).
set -eu
cd "$(dirname "$0")/.."
go run ./cmd/campaign -results campaigns/paper.results.json -update-doc EXPERIMENTS.md
