#!/usr/bin/env sh
# Regenerates the campaign-marked sections of EXPERIMENTS.md from the
# committed campaign results. CI runs this and fails on any diff, so
# the experiment record cannot drift from the committed results (which
# are themselves byte-compared against a fresh campaign run).
#
# Two campaigns share the document, so each update is scoped to its own
# marker regions: the paper campaign owns the reproduction sections, the
# countermeasure campaign owns the masking-evaluation and TVLA sections.
set -eu
cd "$(dirname "$0")/.."
go run ./cmd/campaign -results campaigns/paper.results.json -update-doc EXPERIMENTS.md \
	-sections summary,table1,figure2,table2,fig3,fig4,keyrank,ablations
go run ./cmd/campaign -results campaigns/countermeasures.results.json -update-doc EXPERIMENTS.md \
	-sections countermeasures,tvla
