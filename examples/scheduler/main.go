// Scheduler demonstrates the toolchain integration the paper proposes in
// §2: the micro-architectural leakage model driving a compiler-style
// instruction scheduling pass. A masked gadget whose shares recombine is
// automatically reordered — preserving semantics — until the static
// checker finds no recombination.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/power"
)

func main() {
	// A remasking gadget as a compiler might emit it: the two share
	// updates back to back, unrelated address arithmetic afterwards.
	prog := isa.MustAssemble(`
		eor r4, r0, r2
		eor r5, r1, r3
		add r6, r7, r8
		add r9, r7, r8
	`)
	spec := core.TaintSpec{Regs: map[isa.Reg]core.Labels{
		isa.R0: {"key.0"},
		isa.R1: {"key.1"},
	}}
	cfg := pipeline.ScalarConfig() // worst case: a scalar in-order port

	rep, err := core.Analyze(prog, cfg, power.DefaultModel(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("input gadget, annotated with the leakage model:")
	fmt.Print(rep.AnnotatedListing())

	res, err := core.ScheduleForSecurity(prog, cfg, power.DefaultModel(), nil, spec, "key")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshare recombinations: %d before, %d after scheduling\n", res.Original, res.Violations)
	fmt.Println("\nscheduled gadget (same architectural semantics):")
	rep2, err := core.Analyze(res.Prog, cfg, power.DefaultModel(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep2.AnnotatedListing())
	fmt.Printf("\ninstruction order (new <- old): %v\n", res.Order)
}
