// Maskingaudit audits three scheduling variants of the same first-order
// masked computation, both statically (the paper's leakage model plus
// taint tracking) and dynamically (first-order CPA on simulated traces),
// and shows the §4.2 punchline: a gadget protected by dual-issue on the
// Cortex-A7-class core breaks when the identical binary runs on a
// scalar, ISA-compatible core.
package main

import (
	"fmt"
	"log"

	"repro/internal/masking"
	"repro/internal/pipeline"
)

func audit(name string, g masking.Gadget, cfg pipeline.Config) {
	viol, err := masking.CheckStatic(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	dyn, err := masking.EvaluateLeakage(g, cfg, 1200, 42)
	if err != nil {
		log.Fatal(err)
	}
	verdict := "SECURE"
	if len(viol) > 0 || dyn.Detected {
		verdict = "LEAKS"
	}
	fmt.Printf("%-34s %-7s static violations: %d, measured |r|=%.3f (conf %.4f)\n",
		name, verdict, len(viol), dyn.MaxCorr, dyn.Confidence)
	for _, v := range viol {
		fmt.Println("      ", v)
	}
}

func main() {
	dual := pipeline.DefaultConfig()
	scalar := pipeline.ScalarConfig()

	fmt.Println("First-order Boolean masking: secret = share0 ^ share1; the evaluator")
	fmt.Println("checks whether HW(secret) is recoverable anywhere in the power trace.")
	fmt.Println()
	fmt.Println("--- on the Cortex-A7-class dual-issue core ---")
	audit("naive back-to-back shares", masking.NaiveXor(), dual)
	audit("schedule-separated shares", masking.SeparatedXor(), dual)
	audit("dual-issued share pair", masking.DualIssueXor(), dual)

	fmt.Println()
	fmt.Println("--- the same binaries ported to a scalar ISA-compatible core ---")
	audit("naive back-to-back shares", masking.NaiveXor(), scalar)
	audit("schedule-separated shares", masking.SeparatedXor(), scalar)
	audit("dual-issued share pair", masking.DualIssueXor(), scalar)

	fmt.Println()
	fmt.Println("The dual-issue-protected gadget is secure on the superscalar core and")
	fmt.Println("broken on the scalar one: side-channel security does not port across")
	fmt.Println("ISA-compatible micro-architectures (the paper's central claim).")
}
