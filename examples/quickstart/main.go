// Quickstart: assemble a small program, run it on the simulated
// Cortex-A7-class core, look at its timing (dual issue, CPI), synthesize
// a power trace, and print the static leakage model — the complete tour
// of the library in one file.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/power"
)

func main() {
	// 1. A tiny program: two independent adds (one with an immediate, so
	//    the pair dual-issues) followed by a store.
	prog, err := isa.Assemble(`
		add r2, r0, r1
		add r3, r0, #17
		str r2, [r8]
	`)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Run it on the default core (the micro-architecture the paper
	//    deduces in §3: partial dual issue, 3 read ports, one shifter).
	c := pipeline.MustNew(pipeline.DefaultConfig(), nil)
	c.SetRegs(0x1234, 0x5678)
	c.SetReg(isa.R8, 0x100)
	res, err := c.Run(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed %d instructions in %d cycles (CPI %.2f)\n",
		res.DynamicInstrs(), res.Cycles, res.CPI())
	for _, is := range res.Issues {
		fmt.Printf("  cycle %d slot %d dual=%-5v  %s\n", is.Cycle, is.Slot, is.Dual, prog.Instrs[is.PC])
	}
	fmt.Printf("r2 = %#x, mem[0x100] = %#x\n", res.Regs[isa.R2], c.Mem().Read32(0x100))

	// 3. Synthesize a power trace from the run's component timeline.
	model := power.DefaultModel()
	tr := model.Synthesize(res.Timeline, rand.New(rand.NewSource(1)))
	fmt.Printf("\npower trace: %d samples, mean %.2f, std %.2f\n", len(tr), tr.Mean(), tr.Std())

	// 4. The paper's contribution: the static leakage model. No traces
	//    needed — the analyzer tells you which values meet where.
	rep, err := core.Analyze(prog, pipeline.DefaultConfig(), model, func(c *pipeline.Core) {
		c.SetRegs(0x1234, 0x5678)
		c.SetReg(isa.R8, 0x100)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstatic leakage model (%d events):\n", len(rep.Events))
	for _, e := range rep.Events {
		fmt.Println("  ", e)
	}
}
