// Noisyattack reproduces the §5 / Figure 4 scenario: AES-128 running as
// a userspace process on a loaded Linux system (Apache saturating both
// cores, GUI running, no clock gating), attacked with the
// micro-architecture-aware model — the Hamming distance between two
// consecutively stored SubBytes output bytes, which the MDR's byte-lane
// replication exposes. 100 traces of 16 averaged executions suffice.
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/osnoise"
)

func main() {
	key := [16]byte{0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C}

	for _, env := range []struct {
		name string
		env  osnoise.Environment
	}{
		{"bare metal (control)", osnoise.Quiet()},
		{"loaded Ubuntu 16.04 + Apache @1000 q/s", osnoise.LoadedLinux()},
	} {
		opt := attack.DefaultFig4Options()
		opt.Env = env.env
		res, err := attack.RunFigure4(key, opt)
		if err != nil {
			log.Fatal(err)
		}
		status := "FAILED"
		if res.Success() {
			status = "key recovered"
		}
		fmt.Printf("%-42s %s: byte %#02x, |r| %.3f vs runner-up %.3f, confidence %.4f\n",
			env.name, status, res.Recovered, res.BestCorr, res.SecondCorr, res.Confidence)
	}
	fmt.Println()
	fmt.Println("The absolute correlation drops under load but the correct key stays")
	fmt.Println("distinguishable from the best wrong guess with > 99% confidence —")
	fmt.Println("the paper's validation that a micro-architectural leakage model")
	fmt.Println("extracts keys from realistic, strongly noisy environments.")
}
