// Aesattack runs the §5 / Figure 3 experiment end-to-end: the generated
// byte-oriented AES-128 runs on the simulated core, traces are acquired
// through the synthetic measurement chain, and a CPA with the naive
// HW-of-SubBytes-output model recovers the first-round key byte — with
// the correlation peaks landing exactly on the instructions the paper's
// micro-architectural model predicts.
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
)

func main() {
	key := [16]byte{0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C}

	opt := attack.DefaultFig3Options()
	opt.Traces = 800
	opt.Rounds = 1

	fmt.Printf("attacking key byte %d of %x with %d traces (model: HW of SubBytes output)\n\n",
		opt.KeyByte, key, opt.Traces)
	res, err := attack.RunFigure3(key, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("recovered byte: %#02x (true %#02x), rank of true key: %d, confidence %.4f\n\n",
		res.Recovered, res.TrueKey, res.Rank, res.Confidence)
	fmt.Println("where the correct key correlates (the Figure 3 annotations):")
	for _, r := range res.Regions {
		bar := ""
		n := int(abs(r.PeakCorr) * 40)
		for i := 0; i < n; i++ {
			bar += "#"
		}
		fmt.Printf("  %-4s round %2d  [%5.2f..%5.2f us]  %+0.3f %s\n",
			r.Name, r.Round, r.StartUs, r.EndUs, r.PeakCorr, bar)
	}
	fmt.Println()
	fmt.Println("Reading the peaks like §5 does: the SubBytes look-up's load and store")
	fmt.Println("leak the output byte; ShiftRows re-loads it and rotates it through the")
	fmt.Println("barrel shifter; MixColumns' shift-reduce products and its stack spills")
	fmt.Println("expose it again. A model that ignores the micro-architecture still")
	fmt.Println("succeeds precisely because these structures repeat the value.")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
