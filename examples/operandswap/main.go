// Operandswap demonstrates §4.2 of the paper: swapping the source
// operands of a commutative instruction — a change no semantic tool
// flags — alters which values share pipeline buses, and therefore the
// program's side-channel leakage profile. The static analyzer's Diff
// makes the change visible without measuring a single trace.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/power"
)

func analyze(src string) *core.Report {
	rep, err := core.Analyze(isa.MustAssemble(src), pipeline.DefaultConfig(), power.DefaultModel(), nil)
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

func main() {
	// Two semantically identical programs: XOR is commutative, so
	// swapping r5 and r4 in the second instruction changes nothing
	// architecturally.
	original := "eor r0, r1, r2\neor r3, r4, r5"
	swapped := "eor r0, r1, r2\neor r3, r5, r4"

	a := analyze(original)
	b := analyze(swapped)

	fmt.Println("original:")
	fmt.Println("   eor r0, r1, r2 ; eor r3, r4, r5   -> r1 meets r4 on bus0, r2 meets r5 on bus1")
	fmt.Println("swapped (same semantics!):")
	fmt.Println("   eor r0, r1, r2 ; eor r3, r5, r4   -> r1 meets r5 on bus0, r2 meets r4 on bus1")
	fmt.Println()

	onlyA, onlyB := core.Diff(a, b)
	fmt.Printf("leakage events only in the original: %d\n", len(onlyA))
	for _, e := range onlyA {
		fmt.Println("  ", e)
	}
	fmt.Printf("leakage events only in the swapped version: %d\n", len(onlyB))
	for _, e := range onlyB {
		fmt.Println("  ", e)
	}
	fmt.Println()
	fmt.Println("If r1^r4 is harmless but r1^r5 recombines two shares of a secret,")
	fmt.Println("the \"innocuous\" swap just broke the countermeasure (§4.2).")

	// Make that concrete: label r1/r5 as the two shares of a secret.
	spec := core.TaintSpec{Regs: map[isa.Reg]core.Labels{
		isa.R1: {"key.0"},
		isa.R5: {"key.1"},
	}}
	for _, v := range []struct {
		name string
		src  string
	}{{"original", original}, {"swapped", swapped}} {
		prog := isa.MustAssemble(v.src)
		rep, err := core.Analyze(prog, pipeline.DefaultConfig(), power.DefaultModel(), nil)
		if err != nil {
			log.Fatal(err)
		}
		taints, err := core.ComputeTaint(prog, pipeline.DefaultConfig(), nil, spec)
		if err != nil {
			log.Fatal(err)
		}
		viol := core.FindShareViolations(rep, taints, "key")
		fmt.Printf("%-9s share recombinations: %d\n", v.name, len(viol))
		for _, x := range viol {
			fmt.Println("   ", x)
		}
	}
}
