// Engine tour: drive the parallel trace-synthesis and streaming-CPA
// subsystem directly — fan acquisitions of the simulated AES target out
// across every core, stream them through per-hypothesis Pearson
// accumulators, and watch the determinism contract hold: one worker and
// many produce bit-identical attack results.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/aes"
	"repro/internal/engine"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/sca"
)

func main() {
	key := [16]byte{0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6,
		0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C}
	const keyByte = 0
	const traces = 600

	// 1. The device under attack: the paper's byte-oriented AES on the
	//    simulated Cortex-A7-class core, truncated to one round.
	tgt, err := aes.NewTarget(pipeline.DefaultConfig(), key, aes.ProgramOptions{Rounds: 1, PadNops: 8})
	if err != nil {
		log.Fatal(err)
	}
	model := power.DefaultModel()

	// 2. One calibration run fixes the trace length (timing is
	//    input-independent).
	cal, _, err := tgt.Run([16]byte{})
	if err != nil {
		log.Fatal(err)
	}
	samples := len(cal.Timeline) * model.SamplesPerCycle

	// 3. The Generate callback synthesizes acquisition i: plaintext and
	//    measurement noise both come from the trace's private stream, so
	//    the acquisition is the same no matter which worker runs it.
	gen := func(i int, rng *rand.Rand, s *engine.Sample) error {
		var pt [16]byte
		rng.Read(pt[:])
		res, _, err := tgt.Run(pt)
		if err != nil {
			return err
		}
		s.Trace = model.SynthesizeAveraged(res.Timeline, rng, 4)
		for k := 0; k < 256; k++ {
			s.Hyps[0][k] = float64(sca.HW8(aes.SubBytesOut(pt[keyByte], byte(k))))
		}
		return nil
	}

	// 4. Run the streaming CPA once per pool size. Memory stays bounded:
	//    no trace outlives its chunk.
	attack := func(workers int) (*sca.Attack, time.Duration) {
		start := time.Now()
		banks, err := engine.Run(
			engine.Config{Workers: workers},
			engine.Spec{Traces: traces, Samples: samples, Banks: engine.HypothesisBanks(256), Seed: 1},
			gen)
		if err != nil {
			log.Fatal(err)
		}
		return banks[0].Result(), time.Since(start)
	}

	serial, dtSerial := attack(1)
	parallel, dtParallel := attack(runtime.GOMAXPROCS(0))

	best, corr := parallel.Best()
	fmt.Printf("streaming CPA over %d traces x %d samples, 256 hypotheses\n", traces, samples)
	fmt.Printf("recovered key byte %#02x (true %#02x), peak |r| = %.3f\n", best, key[keyByte], math.Abs(corr))
	fmt.Printf("1 worker: %v; %d workers: %v\n", dtSerial.Round(time.Millisecond),
		runtime.GOMAXPROCS(0), dtParallel.Round(time.Millisecond))

	// 5. The determinism contract: identical rankings and bit-identical
	//    peak correlations for any worker count.
	identical := true
	for k := range serial.Ranking {
		if serial.Ranking[k] != parallel.Ranking[k] ||
			math.Float64bits(serial.Peaks[k]) != math.Float64bits(parallel.Peaks[k]) {
			identical = false
		}
	}
	fmt.Printf("serial and parallel results bit-identical: %v\n", identical)
}
